// Trace replay: drive the interactive cores from a recorded utilization
// trace instead of the synthetic generator.
//
// The example synthesizes a "recorded" trace (in practice you would export
// one from your monitoring stack), writes it to CSV, loads it back through
// the trace_io reader, and runs a SprintCon-controlled rack whose
// interactive cores replay it. Usage:
//
//   ./build/examples/trace_replay [trace.csv] [--faults PLAN]
//                                 [--scenario FILE]
//
// With a csv argument, the file is loaded instead of the synthesized
// trace (one value column, or time_s,value rows). `--faults PLAN` loads
// a fault plan (src/fault/fault.hpp) and replays the trace under it —
// handy for reproducing a production incident against a recorded load.
//
// `--scenario FILE` replays one rack of a declarative scenario
// (src/scenario/spec.hpp, examples/scenarios/): the rack shape, workload,
// surges, grid events and faults all come from the file, so it cannot be
// combined with a csv trace or `--faults`. Useful for debugging a single
// rack of a scenario without spinning up the whole facility_dashboard.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "core/sprintcon.hpp"
#include "fault/injector.hpp"
#include "scenario/loader.hpp"
#include "scenario/rig.hpp"
#include "sim/simulation.hpp"
#include "workload/batch_profile.hpp"
#include "workload/trace_io.hpp"

namespace {

/// One-rack replay of a scenario file: compile, run rack 0, summarize.
int replay_scenario(const std::string& path) {
  using namespace sprintcon;
  scenario::FacilityConfig config;
  try {
    const scenario::ScenarioSpec spec = scenario::load_scenario(path);
    config = scenario::compile(spec);
    std::cout << "replaying rack 0 of scenario '" << spec.name << "' ("
              << spec.duration_s << " s, " << spec.faults.faults.size()
              << " fault(s), " << spec.grid_events.size()
              << " grid event(s))\n";
  } catch (const std::exception& e) {
    std::cerr << "bad scenario: " << e.what() << "\n";
    return 1;
  }
  scenario::Rig rig(config.rack);
  rig.run();
  const metrics::RunSummary s = rig.summary();
  std::cout << "\nafter the scenario on one rack:\n"
            << "  breaker trips:        " << s.cb_trips
            << "\n  UPS energy used:      " << s.ups_discharged_wh << " Wh"
            << "\n  depth of discharge:   " << s.depth_of_discharge
            << "\n  mean interactive f:   " << s.avg_freq_interactive
            << "\n  mean batch f:         " << s.avg_freq_batch
            << "\n  deadlines:            "
            << (s.all_deadlines_met ? "met" : "MISSED") << "\n";
  if (rig.fault_injector() != nullptr) {
    std::cout << "  fault activations:    "
              << rig.fault_injector()->activations() << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sprintcon;

  std::string csv_path;
  std::string faults_path;
  std::string scenario_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--faults" && i + 1 < argc) {
      faults_path = argv[++i];
    } else if (arg == "--scenario" && i + 1 < argc) {
      scenario_path = argv[++i];
    } else {
      csv_path = arg;
    }
  }
  if (!scenario_path.empty()) {
    if (!faults_path.empty() || !csv_path.empty()) {
      std::cerr << "--scenario describes the whole run; it cannot be"
                   " combined with --faults or a csv trace\n";
      return 1;
    }
    return replay_scenario(scenario_path);
  }

  fault::FaultPlan plan;
  if (!faults_path.empty()) {
    try {
      plan = fault::FaultPlan::load(faults_path);
    } catch (const std::exception& e) {
      std::cerr << "bad fault plan " << faults_path << ": " << e.what()
                << "\n";
      return 1;
    }
    std::cout << "replaying under " << plan.faults.size()
              << " scripted fault(s) from " << faults_path << "\n";
  }

  // --- obtain a trace ---------------------------------------------------------
  workload::RecordedTrace trace;
  if (!csv_path.empty()) {
    trace = workload::read_trace_csv_file(csv_path.c_str());
    std::cout << "loaded " << trace.samples.size() << " samples (dt="
              << trace.dt_s << " s) from " << csv_path << "\n";
  } else {
    // Synthesize a 15-minute request-rate trace with a pronounced burst in
    // the middle — the kind of shape a Wikipedia frontend records.
    Rng rng(7);
    trace.dt_s = 5.0;
    for (int i = 0; i < 180; ++i) {
      const double t = static_cast<double>(i) / 180.0;
      const double burst = t > 0.3 && t < 0.8 ? 0.35 : 0.0;
      trace.samples.push_back(0.35 + burst + rng.normal(0.0, 0.05));
    }
    std::ostringstream csv;
    workload::write_trace_csv(csv, trace);
    std::ofstream("replay_trace.csv") << csv.str();
    std::cout << "synthesized a demo trace (also written to "
                 "replay_trace.csv; mean utilization "
              << trace.mean() << ")\n";
  }

  // --- build a rack whose interactive cores replay the trace -----------------
  const server::PlatformSpec spec = server::paper_platform();
  Rng rng(2025);
  std::vector<server::Server> servers;
  const auto profiles = workload::spec2006_profiles();
  std::size_t pi = 0;
  for (std::size_t s = 0; s < 8; ++s) {
    std::vector<server::CpuCore> cores;
    for (std::size_t c = 0; c < spec.cores_per_server; ++c) {
      if (c < 4) {
        // Stagger each core's start offset so they do not move in lockstep.
        const double offset =
            static_cast<double>(s * 11 + c * 3) * trace.dt_s;
        cores.emplace_back(spec.freq_min, spec.freq_max,
                           std::make_unique<workload::ReplayUtilization>(
                               trace, /*scale=*/1.0, /*loop=*/true, offset));
      } else {
        cores.emplace_back(spec.freq_min, spec.freq_max,
                           std::make_unique<workload::BatchJob>(
                               profiles[pi++ % profiles.size()], 720.0, 300.0,
                               workload::CompletionMode::kRepeat, rng.split()));
      }
    }
    servers.emplace_back(spec, std::move(cores), rng.split());
  }
  server::Rack rack(std::move(servers));

  core::SprintConfig sprint = core::paper_config();
  sprint.cb_rated_w = 8.0 * 300.0 * (2.0 / 3.0);  // 1.6 kW for 8 servers
  power::PowerPath path(
      power::CircuitBreaker(sprint.cb_rated_w,
                            power::TripCurve::bulletin_1489a()),
      power::UpsBattery(200.0, 2400.0),
      power::DischargeCircuit(2400.0, 200, 0.95));
  core::SprintConController sprintcon(sprint, rack, path);

  sim::Simulation sim(1.0);
  sim.add(rack);
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<fault::FaultActuatorStage> actuators;
  if (!plan.empty()) {
    injector = std::make_unique<fault::FaultInjector>(plan, /*seed=*/1729,
                                                      rack, path);
    sim.add(*injector);
    sprintcon.set_fault(injector.get());
  }
  sim.add(sprintcon);
  if (injector) {
    actuators = std::make_unique<fault::FaultActuatorStage>(*injector);
    sim.add(*actuators);
  }
  sim.run_until(900.0);

  std::cout << "\nafter a 15-minute sprint on the replayed trace:\n"
            << "  breaker trips:        " << path.breaker().trip_count()
            << "\n  UPS energy used:      "
            << path.battery().total_discharged_wh() << " Wh\n"
            << "  mean interactive util "
            << [&rack] {
                 double u = 0.0;
                 std::size_t n = 0;
                 for (const auto& s : rack.servers())
                   for (const auto& c : s.cores())
                     if (!c.is_batch()) {
                       u += c.utilization();
                       ++n;
                     }
                 return u / static_cast<double>(n);
               }()
            << "\n  sprint state:         " << core::to_string(sprintcon.state())
            << "\n";
  if (injector) {
    std::cout << "  fault activations:    " << injector->activations() << "\n";
  }
  return 0;
}
