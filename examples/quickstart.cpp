// Quickstart: run the paper's 16-server rack under SprintCon for a
// 15-minute sprint and print what happened.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "metrics/summary.hpp"
#include "scenario/rig.hpp"

int main() {
  using namespace sprintcon;

  // The canonical configuration: 16 servers (8 cores each, half
  // interactive / half batch), 3.2 kW breaker overloaded to 4.0 kW in
  // 150 s windows, 400 Wh UPS, 12-minute batch deadlines.
  scenario::RigConfig config;
  config.policy = scenario::Policy::kSprintCon;

  std::cout << "SprintCon quickstart: 15-minute sprint on "
            << config.num_servers << " servers\n"
            << "  CB rated " << config.sprint.cb_rated_w / 1000.0
            << " kW, overload target "
            << config.sprint.cb_overload_w() / 1000.0 << " kW\n"
            << "  UPS capacity " << config.ups_capacity_wh << " Wh\n"
            << "  batch deadline " << config.batch_deadline_s / 60.0
            << " min\n\n";

  scenario::Rig rig(config);
  rig.run();
  const metrics::RunSummary summary = rig.summary();

  std::cout << "Result:\n";
  const metrics::RunSummary runs[] = {summary};
  metrics::print_summaries(std::cout, runs);

  std::cout << "\nInterpretation:\n"
            << "  * interactive cores ran at "
            << summary.avg_freq_interactive
            << " of peak frequency (SprintCon pins them at 1.0)\n"
            << "  * batch cores averaged " << summary.avg_freq_batch
            << " of peak - throttled to exactly meet their deadline\n"
            << "  * the breaker tripped " << summary.cb_trips
            << " times (SprintCon's budget keeps it below the trip curve)\n"
            << "  * UPS depth of discharge: "
            << summary.depth_of_discharge * 100.0 << "% ("
            << summary.battery_cycle_life
            << " LFP cycles at this depth)\n";
  return 0;
}
