// Face-off: run the same 15-minute workload burst under SprintCon and all
// three SGCT baselines and compare the paper's headline metrics
// (computing capacity, storage demand, safety).
//
//   ./build/examples/policy_faceoff
#include <iostream>
#include <vector>

#include "metrics/summary.hpp"
#include "scenario/rig.hpp"

int main() {
  using namespace sprintcon;

  std::vector<metrics::RunSummary> runs;
  for (scenario::Policy policy :
       {scenario::Policy::kSprintCon, scenario::Policy::kSgct,
        scenario::Policy::kSgctV1, scenario::Policy::kSgctV2,
        scenario::Policy::kPowerCap}) {
    scenario::RigConfig config;
    config.policy = policy;
    std::cout << "running " << scenario::to_string(policy) << "...\n";
    runs.push_back(scenario::run_policy(config));
  }

  std::cout << '\n';
  metrics::print_summaries(std::cout, runs);

  const auto& ours = runs.front();
  std::cout << "\ninteractive request latency (rack-mean p95, M/M/1 model):\n";
  for (const auto& run : runs) {
    std::cout << "  " << run.label << ": " << run.mean_p95_latency_ms
              << " ms\n";
  }

  std::cout << "\nSprintCon vs each baseline:\n";
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const auto& theirs = runs[i];
    std::cout << "  vs " << theirs.label << ": interactive capacity "
              << metrics::capacity_improvement(ours.avg_freq_interactive,
                                               theirs.avg_freq_interactive) *
                     100.0
              << "% better, storage demand "
              << metrics::storage_reduction(ours.ups_discharged_wh,
                                            theirs.ups_discharged_wh) *
                     100.0
              << "% lower\n";
  }
  return 0;
}
