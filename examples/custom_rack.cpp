// Custom rack: build a non-default deployment directly from the library's
// building blocks (no scenario::Rig), wire up SprintCon, and drive the
// simulation loop by hand.
//
// The deployment here: 8 servers, 6 interactive + 2 batch cores each
// (an interactive-heavy front-end rack), a smaller 250 Wh UPS, and a
// breaker allowed to overload to 1.2x.
//
//   ./build/examples/custom_rack
#include <iostream>
#include <memory>

#include "common/rng.hpp"
#include "core/sprintcon.hpp"
#include "scenario/rig.hpp"  // only for metrics printing conventions
#include "sim/simulation.hpp"
#include "workload/batch_profile.hpp"

int main() {
  using namespace sprintcon;

  const server::PlatformSpec spec = server::paper_platform();
  Rng rng(2024);

  // --- servers: 6 interactive + 2 batch cores each -----------------------
  const std::size_t kServers = 8;
  std::vector<server::Server> servers;
  const auto profiles = workload::spec2006_profiles();
  std::size_t profile_index = 0;
  for (std::size_t s = 0; s < kServers; ++s) {
    std::vector<server::CpuCore> cores;
    for (std::size_t c = 0; c < spec.cores_per_server; ++c) {
      if (c < 6) {
        workload::InteractiveTraceConfig trace;
        trace.mean_utilization = 0.7;  // front-end rack runs hotter
        cores.emplace_back(spec.freq_min, spec.freq_max,
                           workload::InteractiveTraceGenerator(
                               trace, rng.split(), 17.0 * double(s)));
      } else {
        auto job = std::make_unique<workload::BatchJob>(
            profiles[profile_index++ % profiles.size()],
            /*deadline_s=*/600.0, /*work_s=*/320.0,
            workload::CompletionMode::kRunOnce, rng.split());
        cores.emplace_back(spec.freq_min, spec.freq_max, std::move(job));
      }
    }
    servers.emplace_back(spec, std::move(cores), rng.split());
  }
  server::Rack rack(std::move(servers));

  // --- power path: 1.6 kW breaker @1.2x, 250 Wh UPS ------------------------
  core::SprintConfig sprint = core::paper_config();
  sprint.cb_rated_w = 1600.0;
  sprint.cb_overload_degree = 1.2;
  sprint.burst_duration_s = 720.0;  // 12-minute burst
  sprint.validate();

  power::PowerPath path(
      power::CircuitBreaker(sprint.cb_rated_w,
                            power::TripCurve::bulletin_1489a()),
      power::UpsBattery(250.0, /*max_discharge_w=*/2400.0),
      power::DischargeCircuit(2400.0, 200, 0.95));

  // --- controller and loop ---------------------------------------------------
  core::SprintConController sprintcon(sprint, rack, path);
  sim::Simulation sim(1.0);
  sim.add(rack);
  sim.add(sprintcon);
  sim.recorder().add_probe("cb_w", [&path] { return path.last().cb_w; });
  sim.recorder().add_probe("ups_w", [&path] { return path.last().ups_w; });
  sim.recorder().add_probe("soc",
                           [&path] { return path.battery().state_of_charge(); });

  std::cout << "minute  CB(W)  UPS(W)  SOC    state\n";
  for (int minute = 1; minute <= 12; ++minute) {
    sim.run_until(60.0 * minute);
    std::cout.setf(std::ios::fixed);
    std::cout.precision(0);
    std::cout << minute << "\t" << path.last().cb_w << "\t"
              << path.last().ups_w << "\t";
    std::cout.precision(2);
    std::cout << path.battery().state_of_charge() << "  "
              << core::to_string(sprintcon.state()) << '\n';
  }

  std::size_t met = 0, total = 0;
  for (const auto& ref : rack.batch_cores()) {
    const auto& job = *rack.core(ref).job();
    ++total;
    if (job.completion_time_s() >= 0.0 &&
        job.completion_time_s() <= job.deadline_s())
      ++met;
  }
  std::cout << "\nbatch jobs meeting the 10-minute deadline: " << met << "/"
            << total << '\n'
            << "breaker trips: " << path.breaker().trip_count() << '\n'
            << "UPS energy used: " << path.battery().total_discharged_wh()
            << " Wh of " << path.battery().capacity_wh() << '\n';
  return 0;
}
