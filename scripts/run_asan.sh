#!/usr/bin/env bash
# Build the observability test suites under AddressSanitizer and run them
# (everything labeled `obs`: the event log / metrics / export unit tests
# plus the safety-event, observed-facility, span-tracer, windowed-metrics
# and health-monitor suites). Equivalent to:
#   cmake --preset asan && cmake --build --preset asan && ctest --preset asan
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPRINTCON_ASAN=ON \
  -DSPRINTCON_BUILD_BENCH=OFF \
  -DSPRINTCON_BUILD_EXAMPLES=OFF
cmake --build build-asan -j "$(nproc)" --target obs_test safety_test \
  facility_test export_fuzz_test trace_test windowed_metrics_test health_test
ctest --test-dir build-asan -L obs --output-on-failure "$@"
