#!/usr/bin/env bash
# Build the observability test suites under AddressSanitizer and run them.
# Thin wrapper over the parameterized driver; the flavor table (targets,
# ctest label) lives in run_sanitizer.sh.
exec "$(dirname "$0")/run_sanitizer.sh" asan "$@"
