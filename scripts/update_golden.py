#!/usr/bin/env python3
"""Regenerate the golden-trace snapshots under tests/golden/.

The golden_trace_test compares the canonical rig's downsampled channels
(and every shipped scenario's replay, bit-identically) against checked-in
snapshots; after an *intentional* behavior change, run this script to
rebuild the test and rewrite the affected snapshots:

    python3 scripts/update_golden.py                  # canonical rig only
    python3 scripts/update_golden.py --scenario NAME  # one scenario golden
    python3 scripts/update_golden.py --all            # canonical + library

NAME is the scenario's file stem under examples/scenarios/ (e.g.
"rolling-brownout"). The script then re-runs the test in verification
mode so a stale write (or nondeterminism) is caught immediately.
"""

import argparse
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN = os.path.join(REPO, "tests", "golden", "canonical_trace.jsonl")
SCENARIO_DIR = os.path.join(REPO, "examples", "scenarios")
SCENARIO_GOLDEN_DIR = os.path.join(REPO, "tests", "golden", "scenarios")


def run(cmd, **kwargs):
    print("+ " + " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True, cwd=REPO, **kwargs)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: build)")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--scenario", metavar="NAME",
                       help="regenerate one scenario golden "
                            "(tests/golden/scenarios/NAME.jsonl) instead "
                            "of the canonical trace")
    group.add_argument("--all", action="store_true",
                       help="regenerate the canonical trace and every "
                            "scenario golden")
    args = parser.parse_args()

    if args.scenario:
        scn = os.path.join(SCENARIO_DIR, args.scenario + ".scn")
        if not os.path.exists(scn):
            known = sorted(p[:-4] for p in os.listdir(SCENARIO_DIR)
                           if p.endswith(".scn"))
            sys.exit(f"no such scenario: {scn}\nknown: {', '.join(known)}")

    build = os.path.join(REPO, args.build_dir)
    if not os.path.isdir(build):
        run(["cmake", "-B", build, "-S", REPO,
             "-DCMAKE_BUILD_TYPE=RelWithDebInfo"])
    run(["cmake", "--build", build, "-j", str(os.cpu_count() or 2),
         "--target", "golden_trace_test"])

    test_bin = os.path.join(build, "tests", "golden_trace_test")
    if not os.path.exists(test_bin):
        sys.exit(f"test binary not found: {test_bin}")

    # Pass 1: regenerate the selected snapshot(s).
    env = dict(os.environ, SPRINTCON_GOLDEN_UPDATE="1")
    if args.all:
        run([test_bin, "--gtest_filter=GoldenTrace.MatchesCanonicalRun"
             ":GoldenTrace.ScenarioLibraryMatchesGoldens"], env=env)
        print(f"wrote {GOLDEN} and {SCENARIO_GOLDEN_DIR}/*.jsonl")
    elif args.scenario:
        env["SPRINTCON_GOLDEN_SCENARIO"] = args.scenario
        run([test_bin,
             "--gtest_filter=GoldenTrace.ScenarioLibraryMatchesGoldens"],
            env=env)
        print(f"wrote {SCENARIO_GOLDEN_DIR}/{args.scenario}.jsonl")
    else:
        run([test_bin, "--gtest_filter=GoldenTrace.MatchesCanonicalRun"],
            env=env)
        print(f"wrote {GOLDEN}")

    # Pass 2: verify the fresh snapshot(s) round-trip.
    run([test_bin])
    print("golden trace(s) regenerated and verified")


if __name__ == "__main__":
    main()
