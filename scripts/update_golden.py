#!/usr/bin/env python3
"""Regenerate the golden-trace snapshot (tests/golden/canonical_trace.jsonl).

The golden_trace_test compares the canonical rig's downsampled channels
against the checked-in snapshot; after an *intentional* behavior change,
run this script to rebuild the test and rewrite the snapshot:

    python3 scripts/update_golden.py [--build-dir build]

The script then re-runs the test in verification mode so a stale write
(or nondeterminism) is caught immediately.
"""

import argparse
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN = os.path.join(REPO, "tests", "golden", "canonical_trace.jsonl")


def run(cmd, **kwargs):
    print("+ " + " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True, cwd=REPO, **kwargs)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: build)")
    args = parser.parse_args()

    build = os.path.join(REPO, args.build_dir)
    if not os.path.isdir(build):
        run(["cmake", "-B", build, "-S", REPO,
             "-DCMAKE_BUILD_TYPE=RelWithDebInfo"])
    run(["cmake", "--build", build, "-j", str(os.cpu_count() or 2),
         "--target", "golden_trace_test"])

    test_bin = os.path.join(build, "tests", "golden_trace_test")
    if not os.path.exists(test_bin):
        sys.exit(f"test binary not found: {test_bin}")

    # Pass 1: regenerate the snapshot.
    env = dict(os.environ, SPRINTCON_GOLDEN_UPDATE="1")
    run([test_bin, "--gtest_filter=GoldenTrace.MatchesCanonicalRun"],
        env=env)
    print(f"wrote {GOLDEN}")

    # Pass 2: verify the fresh snapshot round-trips.
    run([test_bin])
    print("golden trace regenerated and verified")


if __name__ == "__main__":
    main()
