#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON export from the span tracer.

Checks the invariants the Tracer promises (DESIGN.md §8.5):
  * top level is {"traceEvents": [...], ...};
  * every record has name/ph/pid/tid, phases are B/E/I/M only;
  * durations carry a numeric "ts" that is non-decreasing per (pid, tid)
    track (each TraceBuffer appends from one thread against one clock);
  * B/E records nest properly per track: every E closes the innermost
    open B with the same name, and no span is left open at the end;
  * each track with events has a thread_name metadata record.

Two modes:
    scripts/check_trace.py TRACE.json
        validate an existing export.
    scripts/check_trace.py --dashboard build/examples/facility_dashboard \
        [--racks 3] [--threads 2]
        self-run the dashboard with --trace into a temp file, validate it,
        and additionally require the decision-path and shard spans
        (mpc_solve, power_outcome, shard_epoch) that a facility run must
        produce. This is the `trace` ctest.

Exits non-zero with a reason on the first violation.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

VALID_PHASES = {"B", "E", "I", "M"}


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(doc: dict) -> dict:
    """Validate the document; return {span name: count} over B records."""
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("top-level 'traceEvents' array missing")

    last_ts = {}     # (pid, tid) -> last timestamp seen
    stacks = {}      # (pid, tid) -> open span-name stack
    named = set()    # tracks with a thread_name metadata record
    seen = set()     # tracks with at least one non-metadata event
    begins = {}      # span name -> count

    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"record {i}: not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                fail(f"record {i}: missing '{key}'")
        ph = e["ph"]
        if ph not in VALID_PHASES:
            fail(f"record {i}: invalid phase {ph!r}")
        track = (e["pid"], e["tid"])

        if ph == "M":
            if e["name"] == "thread_name":
                if not e.get("args", {}).get("name"):
                    fail(f"record {i}: thread_name metadata without a name")
                named.add(track)
            continue

        seen.add(track)
        ts = e.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"record {i}: missing numeric 'ts'")
        if ts < last_ts.get(track, float("-inf")):
            fail(f"record {i}: ts {ts} decreases on track {track} "
                 f"(was {last_ts[track]})")
        last_ts[track] = ts

        if ph == "B":
            stacks.setdefault(track, []).append(e["name"])
            begins[e["name"]] = begins.get(e["name"], 0) + 1
        elif ph == "E":
            stack = stacks.get(track, [])
            if not stack:
                fail(f"record {i}: 'E' for {e['name']!r} on track {track} "
                     "with no open span")
            top = stack.pop()
            if top != e["name"]:
                fail(f"record {i}: 'E' for {e['name']!r} closes open span "
                     f"{top!r} on track {track} (spans must nest)")

    for track, stack in stacks.items():
        if stack:
            fail(f"track {track}: spans left open at end of trace: {stack}")
    unnamed = seen - named
    if unnamed:
        fail(f"tracks without thread_name metadata: {sorted(unnamed)}")
    return begins


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", type=pathlib.Path,
                        help="existing trace-event JSON file to validate")
    parser.add_argument("--dashboard", type=pathlib.Path, default=None,
                        help="facility_dashboard binary: self-run with "
                             "--trace and validate the output")
    parser.add_argument("--racks", type=int, default=3)
    parser.add_argument("--threads", type=int, default=2)
    args = parser.parse_args()

    if (args.trace is None) == (args.dashboard is None):
        parser.error("pass exactly one of TRACE.json or --dashboard BIN")

    require_spans = ()
    if args.dashboard is not None:
        if not args.dashboard.exists():
            fail(f"dashboard binary not found at {args.dashboard}")
        with tempfile.NamedTemporaryFile(suffix=".json",
                                         delete=False) as tmp:
            trace_path = pathlib.Path(tmp.name)
        try:
            subprocess.run(
                [str(args.dashboard), str(args.racks),
                 "--threads", str(args.threads),
                 "--trace", str(trace_path)],
                check=True, capture_output=True, text=True)
            doc = json.loads(trace_path.read_text())
        except subprocess.CalledProcessError as exc:
            fail(f"dashboard exited {exc.returncode}: {exc.stderr.strip()}")
        except json.JSONDecodeError as exc:
            fail(f"trace is not valid JSON: {exc}")
        finally:
            trace_path.unlink(missing_ok=True)
        require_spans = ("mpc_solve", "power_outcome", "shard_epoch")
    else:
        try:
            doc = json.loads(args.trace.read_text())
        except FileNotFoundError:
            fail(f"no such file: {args.trace}")
        except json.JSONDecodeError as exc:
            fail(f"trace is not valid JSON: {exc}")

    begins = validate(doc)
    for span in require_spans:
        if begins.get(span, 0) <= 0:
            fail(f"required span {span!r} absent from the trace "
                 f"(saw {sorted(begins)})")

    total = sum(begins.values())
    print(f"check_trace: OK — {total} spans across "
          f"{len(begins)} span names: "
          + ", ".join(f"{k}×{v}" for k, v in sorted(begins.items())))
    return 0


if __name__ == "__main__":
    sys.exit(main())
