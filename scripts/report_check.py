#!/usr/bin/env python3
"""Smoke-check the structured run report exported by facility_dashboard.

Runs build/examples/facility_dashboard with --json, parses the export and
validates that the observability layer actually captured what the
acceptance criteria demand: per-rack reports with summary/metrics/events,
MPC solver counters that moved, and allocator + UPS events in the
timeline. Exits non-zero (with a reason) on the first violation.

Usage:
    scripts/report_check.py [--dashboard build/examples/facility_dashboard]
                            [--racks 3] [--keep FILE]
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def fail(msg: str) -> None:
    print(f"report_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_rack(i: int, rack: dict) -> None:
    for key in ("label", "summary", "metrics", "events", "dropped_count"):
        if key not in rack:
            fail(f"rack {i}: missing key '{key}'")
    if not isinstance(rack["dropped_count"], int) or rack["dropped_count"] < 0:
        fail(f"rack {i}: dropped_count must be a non-negative integer")
    if "windowed" not in rack["metrics"]:
        fail(f"rack {i}: metrics missing 'windowed' section")
    if rack["label"] != f"SprintCon/rack{i}":
        fail(f"rack {i}: unexpected label {rack['label']!r}")

    counters = rack["metrics"].get("counters", {})
    solves = counters.get("mpc.solves.structured", 0) + counters.get(
        "mpc.solves.dense", 0)
    if solves <= 0:
        fail(f"rack {i}: no MPC solves recorded")
    if counters.get("mpc.qp.iterations", 0) <= 0:
        fail(f"rack {i}: no QP iterations recorded")

    summary = rack["summary"]
    for key in ("avg_freq_batch", "ups_discharged_wh", "cb_trips",
                "all_deadlines_met"):
        if key not in summary:
            fail(f"rack {i}: summary missing '{key}'")

    events = rack["events"]
    if not events:
        fail(f"rack {i}: empty event timeline")
    types = {e.get("type") for e in events}
    if "allocator_decision" not in types:
        fail(f"rack {i}: no allocator_decision events (saw {sorted(types)})")
    if "ups_setpoint" not in types:
        fail(f"rack {i}: no ups_setpoint events (saw {sorted(types)})")
    seqs = [e["seq"] for e in events]
    if seqs != sorted(seqs):
        fail(f"rack {i}: event sequence numbers not monotone")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dashboard",
                        default=REPO_ROOT / "build/examples/facility_dashboard",
                        type=pathlib.Path)
    parser.add_argument("--racks", type=int, default=3)
    parser.add_argument("--keep", type=pathlib.Path, default=None,
                        help="also write the raw JSON export here")
    args = parser.parse_args()

    if not args.dashboard.exists():
        fail(f"dashboard binary not found at {args.dashboard} "
             "(build with -DSPRINTCON_BUILD_EXAMPLES=ON)")

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = pathlib.Path(tmp.name)
    try:
        subprocess.run(
            [str(args.dashboard), str(args.racks), "--json", str(out_path)],
            check=True, capture_output=True, text=True)
        doc = json.loads(out_path.read_text())
    except subprocess.CalledProcessError as exc:
        fail(f"dashboard exited {exc.returncode}: {exc.stderr.strip()}")
    except json.JSONDecodeError as exc:
        fail(f"export is not valid JSON: {exc}")
    finally:
        if args.keep is not None:
            args.keep.write_bytes(out_path.read_bytes())
        out_path.unlink(missing_ok=True)

    context = doc.get("context")
    if not isinstance(context, dict):
        fail("missing context block")
    for key in ("git_commit", "build_type", "num_racks", "num_shards",
                "duration_s"):
        if key not in context:
            fail(f"context missing '{key}'")
    if context["num_racks"] != args.racks:
        fail(f"context.num_racks != {args.racks}")
    if context["num_shards"] < 1:
        fail("context.num_shards must be >= 1")

    if "facility" not in doc or "metrics" not in doc["facility"]:
        fail("missing facility.metrics")
    fac_counters = doc["facility"]["metrics"].get("counters", {})
    if fac_counters.get("facility.racks", 0) != args.racks:
        fail(f"facility.racks counter != {args.racks}")

    racks = doc.get("racks", [])
    if len(racks) != args.racks:
        fail(f"expected {args.racks} rack reports, got {len(racks)}")
    for i, rack in enumerate(racks):
        check_rack(i, rack)

    total_events = sum(len(r["events"]) for r in racks)
    print(f"report_check: OK — {len(racks)} racks, {total_events} events, "
          f"{sum(r['metrics']['counters'].get('mpc.solves.structured', 0) for r in racks)} "
          "structured MPC solves")
    return 0


if __name__ == "__main__":
    sys.exit(main())
