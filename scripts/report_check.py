#!/usr/bin/env python3
"""Smoke-check the structured run report exported by facility_dashboard.

Runs build/examples/facility_dashboard with --json, parses the export and
validates that the observability layer actually captured what the
acceptance criteria demand: per-rack reports with summary/metrics/events,
MPC solver counters that moved, and allocator + UPS events in the
timeline. A second pass re-runs the dashboard with --recovery and a
scripted fault plan and validates the health/recovery summary blocks
(active alerts, remediation actions, incidents resolved, MTTR). Exits
non-zero (with a reason) on the first violation.

Usage:
    scripts/report_check.py [--dashboard build/examples/facility_dashboard]
                            [--racks 3] [--keep FILE] [--skip-recovery]
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def fail(msg: str) -> None:
    print(f"report_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_rack(i: int, rack: dict) -> None:
    for key in ("label", "summary", "metrics", "events", "dropped_count"):
        if key not in rack:
            fail(f"rack {i}: missing key '{key}'")
    if not isinstance(rack["dropped_count"], int) or rack["dropped_count"] < 0:
        fail(f"rack {i}: dropped_count must be a non-negative integer")
    if "windowed" not in rack["metrics"]:
        fail(f"rack {i}: metrics missing 'windowed' section")
    if rack["label"] != f"SprintCon/rack{i}":
        fail(f"rack {i}: unexpected label {rack['label']!r}")

    counters = rack["metrics"].get("counters", {})
    solves = counters.get("mpc.solves.structured", 0) + counters.get(
        "mpc.solves.dense", 0)
    if solves <= 0:
        fail(f"rack {i}: no MPC solves recorded")
    if counters.get("mpc.qp.iterations", 0) <= 0:
        fail(f"rack {i}: no QP iterations recorded")

    summary = rack["summary"]
    for key in ("avg_freq_batch", "ups_discharged_wh", "cb_trips",
                "all_deadlines_met"):
        if key not in summary:
            fail(f"rack {i}: summary missing '{key}'")

    events = rack["events"]
    if not events:
        fail(f"rack {i}: empty event timeline")
    types = {e.get("type") for e in events}
    if "allocator_decision" not in types:
        fail(f"rack {i}: no allocator_decision events (saw {sorted(types)})")
    if "ups_setpoint" not in types:
        fail(f"rack {i}: no ups_setpoint events (saw {sorted(types)})")
    seqs = [e["seq"] for e in events]
    if seqs != sorted(seqs):
        fail(f"rack {i}: event sequence numbers not monotone")


FAULT_PLAN = """\
dvfs_stuck start=120 duration=300
meter_dropout start=200 duration=250
"""


def run_dashboard(dashboard: pathlib.Path, racks: int,
                  extra: list, keep: pathlib.Path = None) -> dict:
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = pathlib.Path(tmp.name)
    try:
        subprocess.run(
            [str(dashboard), str(racks), "--json", str(out_path)] + extra,
            check=True, capture_output=True, text=True)
        return json.loads(out_path.read_text())
    except subprocess.CalledProcessError as exc:
        fail(f"dashboard exited {exc.returncode}: {exc.stderr.strip()}")
    except json.JSONDecodeError as exc:
        fail(f"export is not valid JSON: {exc}")
    finally:
        if keep is not None:
            keep.write_bytes(out_path.read_bytes())
        out_path.unlink(missing_ok=True)


def check_recovery_export(doc: dict, racks: int) -> None:
    """Validate the --recovery health/recovery summary blocks."""
    for key in ("health", "recovery"):
        block = doc.get(key)
        if not isinstance(block, list) or len(block) != racks:
            fail(f"--recovery export: '{key}' must list all {racks} racks")
    for i, h in enumerate(doc["health"]):
        if not isinstance(h.get("active_alerts"), int) or h["active_alerts"] < 0:
            fail(f"rack {i}: health.active_alerts must be a non-negative int")
        if not isinstance(h.get("degraded"), list):
            fail(f"rack {i}: health.degraded must be a list")
        if len(h["degraded"]) != h["active_alerts"]:
            fail(f"rack {i}: degraded list length != active_alerts")
    total_actions = 0
    total_resolved = 0
    for i, r in enumerate(doc["recovery"]):
        for key in ("actions", "incidents_resolved", "active_incidents",
                    "quarantined", "last_mttr_s"):
            if key not in r:
                fail(f"rack {i}: recovery summary missing '{key}'")
        total_actions += r["actions"]
        total_resolved += r["incidents_resolved"]
        if r["incidents_resolved"] > 0 and r["last_mttr_s"] < 0:
            fail(f"rack {i}: incidents resolved but last_mttr_s unset")
    if total_actions <= 0:
        fail("recovery engine took no actions against the scripted faults")
    if total_resolved <= 0:
        fail("recovery engine resolved no incidents")
    quarantined = doc.get("facility", {}).get("quarantined_racks")
    if not isinstance(quarantined, list):
        fail("--recovery export: facility.quarantined_racks missing")
    # Each rack's own metric registry must agree with its summary block.
    for i, (rack, rec) in enumerate(zip(doc.get("racks", []),
                                        doc["recovery"])):
        counters = rack["metrics"].get("counters", {})
        if counters.get("recovery.actions", 0) != rec["actions"]:
            fail(f"rack {i}: recovery.actions counter disagrees with summary")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dashboard",
                        default=REPO_ROOT / "build/examples/facility_dashboard",
                        type=pathlib.Path)
    parser.add_argument("--racks", type=int, default=3)
    parser.add_argument("--keep", type=pathlib.Path, default=None,
                        help="also write the raw JSON export here")
    parser.add_argument("--skip-recovery", action="store_true",
                        help="skip the --recovery fault-plan pass")
    args = parser.parse_args()

    if not args.dashboard.exists():
        fail(f"dashboard binary not found at {args.dashboard} "
             "(build with -DSPRINTCON_BUILD_EXAMPLES=ON)")

    doc = run_dashboard(args.dashboard, args.racks, [], keep=args.keep)

    context = doc.get("context")
    if not isinstance(context, dict):
        fail("missing context block")
    for key in ("git_commit", "build_type", "num_racks", "num_shards",
                "duration_s"):
        if key not in context:
            fail(f"context missing '{key}'")
    if context["num_racks"] != args.racks:
        fail(f"context.num_racks != {args.racks}")
    if context["num_shards"] < 1:
        fail("context.num_shards must be >= 1")

    if "facility" not in doc or "metrics" not in doc["facility"]:
        fail("missing facility.metrics")
    fac_counters = doc["facility"]["metrics"].get("counters", {})
    if fac_counters.get("facility.racks", 0) != args.racks:
        fail(f"facility.racks counter != {args.racks}")

    racks = doc.get("racks", [])
    if len(racks) != args.racks:
        fail(f"expected {args.racks} rack reports, got {len(racks)}")
    for i, rack in enumerate(racks):
        check_rack(i, rack)

    for key in ("health", "recovery"):
        if key in doc:
            fail(f"default run must not export a '{key}' block")

    total_events = sum(len(r["events"]) for r in racks)
    print(f"report_check: OK — {len(racks)} racks, {total_events} events, "
          f"{sum(r['metrics']['counters'].get('mpc.solves.structured', 0) for r in racks)} "
          "structured MPC solves")

    if not args.skip_recovery:
        with tempfile.NamedTemporaryFile(mode="w", suffix=".plan",
                                         delete=False) as tmp:
            tmp.write(FAULT_PLAN)
            plan_path = pathlib.Path(tmp.name)
        try:
            rec_doc = run_dashboard(
                args.dashboard, args.racks,
                ["--recovery", "--faults", str(plan_path)])
        finally:
            plan_path.unlink(missing_ok=True)
        check_recovery_export(rec_doc, args.racks)
        total = sum(r["actions"] for r in rec_doc["recovery"])
        resolved = sum(r["incidents_resolved"] for r in rec_doc["recovery"])
        print(f"report_check: OK — recovery pass: {total} actions, "
              f"{resolved} incidents resolved across {args.racks} racks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
