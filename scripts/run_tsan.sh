#!/usr/bin/env bash
# Build the concurrency-sensitive test suites under ThreadSanitizer and run
# them. Thin wrapper over the parameterized driver; the flavor table
# (targets, ctest label) lives in run_sanitizer.sh.
exec "$(dirname "$0")/run_sanitizer.sh" tsan "$@"
