#!/usr/bin/env bash
# Build the concurrency-sensitive test suites under ThreadSanitizer and run
# them (everything labeled `threads`: the thread pool, the parallel
# facility, and the span tracer under the sharded runtime — trace_test's
# facility-with-tracing case drives per-worker TraceBuffers and the
# concurrent metric emitters from every shard). Equivalent to:
#   cmake --preset tsan && cmake --build --preset tsan && ctest --preset tsan
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPRINTCON_TSAN=ON \
  -DSPRINTCON_BUILD_BENCH=OFF \
  -DSPRINTCON_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j "$(nproc)" --target thread_pool_test facility_test \
  facility_shard_test obs_test trace_test
ctest --test-dir build-tsan -L threads --output-on-failure "$@"
