#!/usr/bin/env python3
"""Run the controller microbenchmarks and record them as BENCH_controller.json.

By default this configures and builds the Release preset (build-release/),
runs its perf_controller with google-benchmark's JSON output, and condenses
the result into a small stable document at the repo root so the perf
trajectory of the controller hot paths can be tracked across PRs:

    {
      "context": { "build_type": "release", "num_cpus": ..., "git_commit": ... },
      "benchmarks": { "<name>": {"real_time_ns": ..., "items_per_second": ...} },
      "headline": {
        "mpc_step_256_structured_ns": ...,
        "rig_tick_ns": ...,
        "facility_ticks_per_second_1000": ...
      }
    }

The recorded build_type is OUR CMAKE_BUILD_TYPE read from the build tree's
CMakeCache.txt — google-benchmark's own `library_build_type` context field
describes the benchmark *library*, not this code, and is ignored. Numbers
from a Debug build are refused (override with --allow-debug, which still
stamps the truth into the JSON).

With `--compare OLD.json` the freshly condensed document is also diffed
against a previously recorded one: every headline metric present in both
is checked in its natural direction (times and overhead percentages must
not grow, throughput and speedups must not shrink) against a relative
threshold (default 5%, `--threshold`). Any regression is printed and the
script exits non-zero, so a CI step can gate on
`bench_to_json.py --compare BENCH_controller.json`.

Usage:
    scripts/bench_to_json.py [--build-dir build-release] [--no-build]
                             [--bench-binary PATH] [--output FILE]
                             [--filter REGEX] [--min-time SECONDS]
                             [--allow-debug]
                             [--compare OLD.json] [--threshold PCT]
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def build_release_preset(build_dir: pathlib.Path) -> None:
    """Configure + build the benchmark target for the given build tree.

    Uses the `release` CMake preset when targeting its binaryDir, else a
    plain configure so --build-dir can point at any existing tree.
    """
    if build_dir == REPO_ROOT / "build-release":
        subprocess.run(["cmake", "--preset", "release"], cwd=REPO_ROOT,
                       check=True)
    elif not (build_dir / "CMakeCache.txt").exists():
        raise SystemExit(f"{build_dir} is not a configured build tree; "
                         "configure it first or drop --build-dir")
    subprocess.run(["cmake", "--build", str(build_dir), "-j",
                    "--target", "perf_controller"], cwd=REPO_ROOT, check=True)


def read_build_type(build_dir: pathlib.Path) -> str:
    """Our CMAKE_BUILD_TYPE from the build tree, lowercased ('' if unset)."""
    cache = build_dir / "CMakeCache.txt"
    if not cache.exists():
        return ""
    match = re.search(r"^CMAKE_BUILD_TYPE:\w+=(.*)$", cache.read_text(),
                      re.MULTILINE)
    return match.group(1).strip().lower() if match else ""


def git_commit() -> str:
    try:
        commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                                cwd=REPO_ROOT, capture_output=True, text=True,
                                check=True).stdout.strip()
        dirty = subprocess.run(["git", "status", "--porcelain"],
                               cwd=REPO_ROOT, capture_output=True, text=True,
                               check=True).stdout.strip()
        return f"{commit}-dirty" if dirty else commit
    except (OSError, subprocess.CalledProcessError):
        return ""


def run_benchmarks(binary: pathlib.Path, bench_filter: str,
                   min_time: float) -> dict:
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = pathlib.Path(tmp.name)
    # Old google-benchmark (< 1.8) takes a plain double for min_time; newer
    # versions require a "<N>s" suffix. Probe the old form first.
    cmd = [
        str(binary),
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    probe = subprocess.run(cmd + ["--benchmark_list_tests=true"],
                           capture_output=True, text=True)
    if probe.returncode != 0:
        cmd[-1] = f"--benchmark_min_time={min_time}s"
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    subprocess.run(cmd, check=True)
    try:
        with out_path.open() as fh:
            return json.load(fh)
    finally:
        out_path.unlink(missing_ok=True)


_NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# google-benchmark entry keys that are not user counters.
_STANDARD_KEYS = frozenset({
    "name", "family_index", "per_family_instance_index", "run_name",
    "run_type", "repetitions", "repetition_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "items_per_second",
    "bytes_per_second", "label", "aggregate_name", "aggregate_unit",
})


def condense(raw: dict, build_type: str) -> dict:
    benchmarks = {}
    for entry in raw.get("benchmarks", []):
        if entry.get("run_type") != "iteration":
            continue
        scale = _NS_PER_UNIT[entry.get("time_unit", "ns")]
        record = {
            "real_time_ns": entry["real_time"] * scale,
            "cpu_time_ns": entry["cpu_time"] * scale,
            "iterations": entry["iterations"],
        }
        if "items_per_second" in entry:
            record["items_per_second"] = entry["items_per_second"]
        # User counters (state.counters[...]) surface as extra numeric keys;
        # BM_MpcStepObserved reports solver health from the metrics
        # snapshot this way.
        counters = {
            key: value
            for key, value in entry.items()
            if key not in _STANDARD_KEYS and isinstance(value, (int, float))
        }
        if counters:
            record["counters"] = counters
        benchmarks[entry["name"]] = record

    headline = {}
    structured = benchmarks.get("BM_MpcStep/256")
    dense = benchmarks.get("BM_MpcStepDense/256")
    observed = benchmarks.get("BM_MpcStepObserved/256")
    if structured:
        headline["mpc_step_256_structured_ns"] = structured["real_time_ns"]
    if dense:
        headline["mpc_step_256_dense_ns"] = dense["real_time_ns"]
    if structured and dense and structured["real_time_ns"] > 0:
        headline["mpc_step_256_speedup"] = round(
            dense["real_time_ns"] / structured["real_time_ns"], 2)
    if observed:
        headline["mpc_step_256_observed_ns"] = observed["real_time_ns"]
        if structured and structured["real_time_ns"] > 0:
            headline["mpc_obs_overhead_pct"] = round(
                100.0 * (observed["real_time_ns"] / structured["real_time_ns"]
                         - 1.0), 2)
        for counter, key in (("qp_iterations_per_solve",
                              "mpc_step_256_qp_iterations"),
                             ("qp_restarts_per_solve",
                              "mpc_step_256_qp_restarts")):
            value = observed.get("counters", {}).get(counter)
            if value is not None:
                headline[key] = round(value, 2)

    rig_tick = benchmarks.get("BM_RigTick")
    if rig_tick:
        headline["rig_tick_ns"] = round(rig_tick["real_time_ns"], 1)

    # Fleet scaling: aggregate simulated-tick throughput (items/s) at each
    # fleet size, and the parallel-vs-sequential speedup where both rows ran.
    for rigs in (100, 1000, 10000):
        par = benchmarks.get(f"BM_FacilityScaling/{rigs}/0")
        seq = benchmarks.get(f"BM_FacilityScaling/{rigs}/1")
        best = par or seq
        if best and "items_per_second" in best:
            headline[f"facility_ticks_per_second_{rigs}"] = round(
                best["items_per_second"])
        if (par and seq and "items_per_second" in par
                and seq.get("items_per_second")):
            headline[f"facility_scaling_speedup_{rigs}"] = round(
                par["items_per_second"] / seq["items_per_second"], 2)

    return {
        "context": {
            "date": raw.get("context", {}).get("date"),
            "host_name": raw.get("context", {}).get("host_name"),
            "num_cpus": raw.get("context", {}).get("num_cpus"),
            "build_type": build_type,
            "git_commit": git_commit(),
        },
        "benchmarks": benchmarks,
        "headline": headline,
    }


def headline_direction(key: str):
    """'lower' / 'higher' for a headline metric, None when unordered."""
    if "per_second" in key or "speedup" in key:
        return "higher"
    if key.endswith("_ns") or key.endswith("_pct"):
        return "lower"
    return None


def compare_headlines(old: dict, new: dict, threshold_pct: float) -> list:
    """Regression messages for headline metrics that moved the wrong way
    by more than threshold_pct percent. Metrics missing from either side
    or without a natural direction are skipped."""
    regressions = []
    tolerance = threshold_pct / 100.0
    for key in sorted(set(old) & set(new)):
        direction = headline_direction(key)
        before, after = old[key], new[key]
        if direction is None or not all(
                isinstance(v, (int, float)) and v > 0
                for v in (before, after)):
            continue
        change = (after - before) / before
        arrow = f"{before:g} -> {after:g} ({change:+.1%})"
        if direction == "lower" and change > tolerance:
            regressions.append(f"{key}: {arrow}, allowed +{tolerance:.0%}")
        elif direction == "higher" and change < -tolerance:
            regressions.append(f"{key}: {arrow}, allowed -{tolerance:.0%}")
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir",
                        default=str(REPO_ROOT / "build-release"),
                        help="build tree to build and take the binary from")
    parser.add_argument("--no-build", action="store_true",
                        help="skip the configure/build step")
    parser.add_argument("--bench-binary", default="",
                        help="benchmark binary (default: "
                             "<build-dir>/bench/perf_controller)")
    parser.add_argument("--output",
                        default=str(REPO_ROOT / "BENCH_controller.json"))
    parser.add_argument("--filter", default="",
                        help="google-benchmark --benchmark_filter regex")
    parser.add_argument("--min-time", type=float, default=0.1,
                        help="per-benchmark minimum measurement time")
    parser.add_argument("--allow-debug", action="store_true",
                        help="record numbers from a non-Release build anyway")
    parser.add_argument("--compare", type=pathlib.Path, default=None,
                        help="previously recorded JSON to diff headline "
                             "metrics against; exit non-zero on regression")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="relative regression threshold in percent "
                             "(default 5)")
    args = parser.parse_args()
    if args.threshold < 0:
        parser.error("--threshold must be non-negative")

    build_dir = pathlib.Path(args.build_dir)
    if not args.no_build:
        build_release_preset(build_dir)

    binary = (pathlib.Path(args.bench_binary) if args.bench_binary
              else build_dir / "bench/perf_controller")
    if not binary.exists():
        print(f"benchmark binary not found: {binary}\n"
              "build it first: cmake --preset release && "
              "cmake --build build-release --target perf_controller",
              file=sys.stderr)
        return 1

    build_type = read_build_type(build_dir)
    if build_type != "release":
        message = (f"build tree {build_dir} has CMAKE_BUILD_TYPE="
                   f"{build_type or '(unset)'} — benchmark numbers from a "
                   "non-Release build are not comparable")
        if not args.allow_debug:
            print(f"error: {message}\nuse the release preset "
                  "(scripts/bench_to_json.py with no flags) or pass "
                  "--allow-debug to record them anyway", file=sys.stderr)
            return 1
        print(f"WARNING: {message}; recording with "
              f"build_type={build_type or '(unset)'}", file=sys.stderr)

    raw = run_benchmarks(binary, args.filter, args.min_time)
    condensed = condense(raw, build_type)
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(condensed, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    if condensed["headline"]:
        print(json.dumps(condensed["headline"], indent=2))

    if args.compare is not None:
        try:
            old = json.loads(args.compare.read_text())
        except FileNotFoundError:
            print(f"error: baseline {args.compare} not found",
                  file=sys.stderr)
            return 1
        except json.JSONDecodeError as exc:
            print(f"error: baseline {args.compare} is not valid JSON: {exc}",
                  file=sys.stderr)
            return 1
        old_headline = old.get("headline", {})
        compared = sorted(set(old_headline) & set(condensed["headline"]))
        if not compared:
            print(f"error: no common headline metrics with {args.compare}",
                  file=sys.stderr)
            return 1
        regressions = compare_headlines(old_headline, condensed["headline"],
                                        args.threshold)
        if regressions:
            print(f"PERF REGRESSION vs {args.compare} "
                  f"(threshold {args.threshold:g}%):", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"compare: OK — {len(compared)} headline metrics within "
              f"{args.threshold:g}% of {args.compare}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
