#!/usr/bin/env python3
"""Run the controller microbenchmarks and record them as BENCH_controller.json.

Runs build/bench/perf_controller with google-benchmark's JSON output, then
condenses the result into a small stable document at the repo root so the
perf trajectory of the controller hot paths can be tracked across PRs:

    {
      "benchmarks": { "<name>": {"real_time_ns": ..., "items_per_second": ...} },
      "headline": {
        "mpc_step_256_structured_ns": ...,
        "mpc_step_256_dense_ns": ...,
        "mpc_step_256_speedup": ...
      }
    }

Usage:
    scripts/bench_to_json.py [--bench-binary build/bench/perf_controller]
                             [--output BENCH_controller.json]
                             [--filter REGEX] [--min-time SECONDS]
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def run_benchmarks(binary: pathlib.Path, bench_filter: str,
                   min_time: float) -> dict:
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = pathlib.Path(tmp.name)
    # Old google-benchmark (< 1.8) takes a plain double for min_time; newer
    # versions require a "<N>s" suffix. Probe the old form first.
    cmd = [
        str(binary),
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    probe = subprocess.run(cmd + ["--benchmark_list_tests=true"],
                           capture_output=True, text=True)
    if probe.returncode != 0:
        cmd[-1] = f"--benchmark_min_time={min_time}s"
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    subprocess.run(cmd, check=True)
    try:
        with out_path.open() as fh:
            return json.load(fh)
    finally:
        out_path.unlink(missing_ok=True)


_NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# google-benchmark entry keys that are not user counters.
_STANDARD_KEYS = frozenset({
    "name", "family_index", "per_family_instance_index", "run_name",
    "run_type", "repetitions", "repetition_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "items_per_second",
    "bytes_per_second", "label", "aggregate_name", "aggregate_unit",
})


def condense(raw: dict) -> dict:
    benchmarks = {}
    for entry in raw.get("benchmarks", []):
        if entry.get("run_type") != "iteration":
            continue
        scale = _NS_PER_UNIT[entry.get("time_unit", "ns")]
        record = {
            "real_time_ns": entry["real_time"] * scale,
            "cpu_time_ns": entry["cpu_time"] * scale,
            "iterations": entry["iterations"],
        }
        if "items_per_second" in entry:
            record["items_per_second"] = entry["items_per_second"]
        # User counters (state.counters[...]) surface as extra numeric keys;
        # BM_MpcStepObserved reports solver health from the metrics
        # snapshot this way.
        counters = {
            key: value
            for key, value in entry.items()
            if key not in _STANDARD_KEYS and isinstance(value, (int, float))
        }
        if counters:
            record["counters"] = counters
        benchmarks[entry["name"]] = record

    headline = {}
    structured = benchmarks.get("BM_MpcStep/256")
    dense = benchmarks.get("BM_MpcStepDense/256")
    observed = benchmarks.get("BM_MpcStepObserved/256")
    if structured:
        headline["mpc_step_256_structured_ns"] = structured["real_time_ns"]
    if dense:
        headline["mpc_step_256_dense_ns"] = dense["real_time_ns"]
    if structured and dense and structured["real_time_ns"] > 0:
        headline["mpc_step_256_speedup"] = round(
            dense["real_time_ns"] / structured["real_time_ns"], 2)
    if observed:
        headline["mpc_step_256_observed_ns"] = observed["real_time_ns"]
        if structured and structured["real_time_ns"] > 0:
            headline["mpc_obs_overhead_pct"] = round(
                100.0 * (observed["real_time_ns"] / structured["real_time_ns"]
                         - 1.0), 2)
        for counter, key in (("qp_iterations_per_solve",
                              "mpc_step_256_qp_iterations"),
                             ("qp_restarts_per_solve",
                              "mpc_step_256_qp_restarts")):
            value = observed.get("counters", {}).get(counter)
            if value is not None:
                headline[key] = round(value, 2)

    return {
        "context": {
            "date": raw.get("context", {}).get("date"),
            "host_name": raw.get("context", {}).get("host_name"),
            "num_cpus": raw.get("context", {}).get("num_cpus"),
            "build_type": raw.get("context", {}).get("library_build_type"),
        },
        "benchmarks": benchmarks,
        "headline": headline,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-binary",
                        default=str(REPO_ROOT / "build/bench/perf_controller"))
    parser.add_argument("--output",
                        default=str(REPO_ROOT / "BENCH_controller.json"))
    parser.add_argument("--filter", default="",
                        help="google-benchmark --benchmark_filter regex")
    parser.add_argument("--min-time", type=float, default=0.1,
                        help="per-benchmark minimum measurement time")
    args = parser.parse_args()

    binary = pathlib.Path(args.bench_binary)
    if not binary.exists():
        print(f"benchmark binary not found: {binary}\n"
              "build it first: cmake --build build --target perf_controller",
              file=sys.stderr)
        return 1

    raw = run_benchmarks(binary, args.filter, args.min_time)
    condensed = condense(raw)
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(condensed, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    if condensed["headline"]:
        print(json.dumps(condensed["headline"], indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
