#!/usr/bin/env bash
# Parameterized sanitizer driver: one flavor table instead of three
# near-identical build-and-run scripts. run_asan.sh / run_ubsan.sh /
# run_tsan.sh remain as thin wrappers for muscle memory and CI.
#
#   asan    AddressSanitizer over the observability and scenario suites
#           (labels `obs` + `scenario`: event log / metrics / export unit
#           tests plus the safety-event, observed-facility, span-tracer,
#           windowed-metrics and health-monitor suites, the scenario
#           loader/fuzzer, and the golden scenario replays — so every
#           shipped scenario gets one replay under ASan)
#   tsan    ThreadSanitizer over the concurrency-sensitive suites (label
#           `threads`: the thread pool, the parallel facility, and the span
#           tracer under the sharded runtime — trace_test's
#           facility-with-tracing case drives per-worker TraceBuffers and
#           the concurrent metric emitters from every shard)
#   ubsan   UndefinedBehaviorSanitizer over the FULL suite — including the
#           `fault` chaos sweeps, the export fuzz harness, and the
#           scenario spec fuzzer + golden scenario replays, whose whole
#           point is proving the parsers and injectors are UB-free on
#           hostile input
#
# Each flavor is equivalent to:
#   cmake --preset <flavor> && cmake --build --preset <flavor> \
#     && ctest --preset <flavor>
#
# Usage: scripts/run_sanitizer.sh <asan|tsan|ubsan> [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

FLAVOR="${1:-}"
shift || true

# Per-flavor knobs: the CMake toggle, which test binaries to build (empty =
# everything), and which ctest label to select (empty = full suite).
case "$FLAVOR" in
  asan)
    CMAKE_FLAG=SPRINTCON_ASAN
    TARGETS=(obs_test safety_test facility_test export_fuzz_test
      trace_test windowed_metrics_test health_test
      scenario_test scenario_fuzz_test golden_trace_test)
    CTEST_LABEL='obs|scenario'
    CTEST_PARALLEL=0
    ;;
  tsan)
    CMAKE_FLAG=SPRINTCON_TSAN
    TARGETS=(thread_pool_test facility_test facility_shard_test
      obs_test trace_test)
    CTEST_LABEL=threads
    CTEST_PARALLEL=0
    ;;
  ubsan)
    CMAKE_FLAG=SPRINTCON_UBSAN
    TARGETS=()
    CTEST_LABEL=""
    CTEST_PARALLEL=1
    ;;
  *)
    echo "usage: $0 <asan|tsan|ubsan> [extra ctest args...]" >&2
    exit 2
    ;;
esac

BUILD_DIR="build-$FLAVOR"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-D${CMAKE_FLAG}=ON" \
  -DSPRINTCON_BUILD_BENCH=OFF \
  -DSPRINTCON_BUILD_EXAMPLES=OFF

BUILD_ARGS=(--build "$BUILD_DIR" -j "$(nproc)")
if [[ ${#TARGETS[@]} -gt 0 ]]; then
  BUILD_ARGS+=(--target "${TARGETS[@]}")
fi
cmake "${BUILD_ARGS[@]}"

CTEST_ARGS=(--test-dir "$BUILD_DIR" --output-on-failure)
if [[ -n "$CTEST_LABEL" ]]; then
  CTEST_ARGS+=(-L "$CTEST_LABEL")
fi
if [[ "$CTEST_PARALLEL" == 1 ]]; then
  CTEST_ARGS+=(-j "$(nproc)")
fi
ctest "${CTEST_ARGS[@]}" "$@"
