#!/usr/bin/env bash
# Benchmark smoke gate: build the Release preset, run a tiny facility
# scaling benchmark, and check that sharded execution actually beats
# sequential on multi-core hosts.
#
# On a single-CPU host there is nothing to compare (shards resolve to 1),
# so the check exits 77 — wired into CTest with SKIP_RETURN_CODE 77 the
# test reports as skipped, not passed.
#
#   scripts/run_bench_smoke.sh [build-dir]     (default: build-release)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-release}"
MIN_SPEEDUP="${SPRINTCON_SMOKE_MIN_SPEEDUP:-1.5}"
RIGS="${SPRINTCON_SMOKE_RIGS:-16}"

if [ "$(nproc)" -lt 2 ]; then
  echo "run_bench_smoke: only $(nproc) CPU — parallel speedup unmeasurable, skipping"
  exit 77
fi

if [ "$BUILD_DIR" = "build-release" ]; then
  cmake --preset release
fi
cmake --build "$BUILD_DIR" -j "$(nproc)" --target perf_controller

BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[A-Z]*=//p' "$BUILD_DIR/CMakeCache.txt")
if [ "$BUILD_TYPE" != "Release" ]; then
  echo "run_bench_smoke: WARNING: $BUILD_DIR is $BUILD_TYPE, not Release" >&2
fi

OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT
# Sequential (threads=1) and sharded (threads=0) rows for a small fleet.
"$BUILD_DIR/bench/perf_controller" \
  --benchmark_filter="BM_FacilityScaling/$RIGS/[01]\$" \
  --benchmark_out="$OUT" --benchmark_out_format=json \
  --benchmark_min_time=0.2 >/dev/null

python3 - "$OUT" "$MIN_SPEEDUP" <<'EOF'
import json, sys
raw = json.load(open(sys.argv[1]))
min_speedup = float(sys.argv[2])
rows = {}
for entry in raw.get("benchmarks", []):
    if entry.get("run_type") != "iteration":
        continue
    rows[entry["name"]] = entry["items_per_second"]
seq = next((v for k, v in rows.items() if k.endswith("/1")), None)
par = next((v for k, v in rows.items() if k.endswith("/0")), None)
if seq is None or par is None:
    sys.exit(f"missing benchmark rows, got: {sorted(rows)}")
speedup = par / seq
print(f"sequential {seq:,.0f} ticks/s, sharded {par:,.0f} ticks/s, "
      f"speedup {speedup:.2f}x (need >= {min_speedup}x)")
if speedup < min_speedup:
    sys.exit(f"FAIL: sharded speedup {speedup:.2f}x < {min_speedup}x")
print("OK")
EOF
