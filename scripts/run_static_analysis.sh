#!/usr/bin/env bash
# Static-analysis driver (DESIGN.md §11) — three legs:
#
#   1. invariant lints   scripts/lint_invariants.py: corpus self-test,
#                        then a clean pass over src/ (wall-clock in the
#                        decision path, allocation in SPRINTCON_HOT
#                        functions, raw-unit double parameters)
#   2. thread safety     the `tidy` preset: Clang build of src/ under
#                        -Wthread-safety -Werror=thread-safety, turning
#                        lock-discipline violations into compile errors
#   3. clang-tidy        the curated .clang-tidy profile over every
#                        src/ translation unit, warnings-as-errors
#
# Legs 2 and 3 need clang++ / clang-tidy; when missing they are SKIPPED
# with a notice (exit stays 0) so the script is useful on GCC-only boxes.
# CI passes --require-all, which turns a skip into a failure — the
# blocking static-analysis job must never silently thin out.
#
# Usage: scripts/run_static_analysis.sh [--require-all] [--lint-only]
set -euo pipefail

cd "$(dirname "$0")/.."

REQUIRE_ALL=0
LINT_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --require-all) REQUIRE_ALL=1 ;;
    --lint-only) LINT_ONLY=1 ;;
    *) echo "usage: $0 [--require-all] [--lint-only]" >&2; exit 2 ;;
  esac
done

BUILD_DIR=build-tidy
FAILED=0

skip() {
  # $1 = leg name, $2 = missing tool
  if [[ "$REQUIRE_ALL" == 1 ]]; then
    echo "FAIL [$1]: $2 not found and --require-all is set" >&2
    FAILED=1
  else
    echo "SKIP [$1]: $2 not found (install clang/clang-tidy, or run in CI)"
  fi
}

echo "== [1/3] project-invariant lints =="
python3 scripts/lint_invariants.py --self-test tests/lint/corpus
python3 scripts/lint_invariants.py

if [[ "$LINT_ONLY" == 1 ]]; then
  exit "$FAILED"
fi

echo "== [2/3] Clang thread-safety analysis (-Werror=thread-safety) =="
if command -v clang++ >/dev/null 2>&1; then
  CONFIGURE_ARGS=(
    -B "$BUILD_DIR" -S .
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
    -DCMAKE_CXX_COMPILER=clang++
    -DSPRINTCON_THREAD_SAFETY=ON
    -DSPRINTCON_BUILD_TESTS=OFF
    -DSPRINTCON_BUILD_BENCH=OFF
    -DSPRINTCON_BUILD_EXAMPLES=OFF
  )
  if command -v ccache >/dev/null 2>&1; then
    CONFIGURE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
  fi
  cmake "${CONFIGURE_ARGS[@]}"
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  echo "thread-safety build: OK"
else
  skip "thread-safety" "clang++"
fi

echo "== [3/3] clang-tidy (curated profile, warnings-as-errors) =="
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    # No clang++ leg ran; export a database with whatever compiler
    # configures (clang-tidy maps GCC flags fine for this codebase).
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DSPRINTCON_BUILD_TESTS=OFF \
      -DSPRINTCON_BUILD_BENCH=OFF \
      -DSPRINTCON_BUILD_EXAMPLES=OFF
  fi
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "$BUILD_DIR" -quiet "src/.*\.cpp$"
  else
    # Portable fallback: one clang-tidy process per TU, all cores.
    find src -name '*.cpp' -print0 |
      xargs -0 -P "$(nproc)" -n 1 clang-tidy -p "$BUILD_DIR" --quiet
  fi
  echo "clang-tidy: OK"
else
  skip "clang-tidy" "clang-tidy"
fi

exit "$FAILED"
