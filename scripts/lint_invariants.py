#!/usr/bin/env python3
"""SprintCon project-invariant linter (DESIGN.md section 11).

Enforces three SprintCon-specific correctness rules that generic
clang-tidy profiles cannot express:

  wall-clock  No wall-clock or ambient-randomness source reachable from
              the simulation / control / power / fault decision path
              (src/sim, src/control, src/power, src/fault, src/core,
              src/server, src/workload). Determinism — bit-identical
              sharded execution, golden traces, reproducible chaos
              sweeps — requires that every timestamp come from the
              SimClock and every random draw from a seeded Rng. The obs
              layer (src/obs) owns the only legal steady_clock epoch and
              is exempt, as is src/scenario and src/common, whose
              steady_clock uses are wall-time *measurement* around the
              simulation, never inputs to it.

  hot-alloc   No direct heap allocation (new / delete / malloc family /
              make_unique / make_shared) and no dynamic_cast in the body
              of a function marked SPRINTCON_HOT (the per-tick hot path:
              rig tick driver, structured-QP solve, SoA thermal kernel,
              recorder/event append). Amortized container growth against
              a pre-sized reservation is allowed; the rule targets the
              unconditional per-call allocations. The check is textual
              and per-body (not transitive through callees).

  raw-unit    No `double` parameter whose name is a bare unit noun
              (seconds, watts, joules, watt_hours, wh) in a public
              header. Such a parameter names the unit but not the role
              and silently accepts any double; use the units.hpp strong
              types (units::Seconds, units::Watts, ...) or a
              role-suffixed name (dt_s, budget_w). src/common/units.hpp
              is the one legal raw-double conversion boundary and is
              exempt.

Suppressions: a line containing `lint:allow(<rule-id>)` (in a comment)
is exempt from that rule, e.g.
    const auto t0 = std::chrono::steady_clock::now();  // lint:allow(wall-clock): profiling only

Corpus files under tests/lint/corpus declare their expected findings:
    // lint:treat-as(src/sim/fake.cpp)   — lint as if at this repo path
    // lint:expect(wall-clock)           — self-test asserts this fires
Run `lint_invariants.py --self-test tests/lint/corpus` to check the
linter against the corpus (every expected rule must fire, nothing else).

Exit codes: 0 clean, 1 violations (or self-test mismatch), 2 bad usage.

Implemented with a comment/string-stripping tokenizer rather than
libclang so it runs anywhere python3 does; the golden corpus keeps the
textual heuristics honest (see DESIGN.md section 11 for how to add a rule).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

# Directories (relative to the repo root) whose code makes *decisions* —
# anything here must be deterministic given (config, seed).
DECISION_PATH_DIRS = (
    "src/sim/",
    "src/control/",
    "src/power/",
    "src/fault/",
    "src/core/",
    "src/server/",
    "src/workload/",
)

# The raw-unit rule's one legal boundary.
RAW_UNIT_EXEMPT = ("src/common/units.hpp",)

WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\b"), "clock_gettime()"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"), "time()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"(?<![\w:.>])rand\s*\("), "rand()"),
]

HOT_BANNED_PATTERNS = [
    (re.compile(r"\bnew\b"), "new-expression"),
    (re.compile(r"\bdelete\b"), "delete-expression"),
    (re.compile(r"\bmalloc\s*\("), "malloc()"),
    (re.compile(r"\bcalloc\s*\("), "calloc()"),
    (re.compile(r"\brealloc\s*\("), "realloc()"),
    (re.compile(r"(?<![\w:.>])free\s*\("), "free()"),
    (re.compile(r"\bdynamic_cast\b"), "dynamic_cast"),
    (re.compile(r"\bmake_unique\b"), "std::make_unique"),
    (re.compile(r"\bmake_shared\b"), "std::make_shared"),
]

RAW_UNIT_NAMES = ("seconds", "watts", "joules", "watt_hours", "wh")
RAW_UNIT_PATTERN = re.compile(
    r"[(,]\s*(?:const\s+)?double\s+(" + "|".join(RAW_UNIT_NAMES)
    + r")\s*(?=[,)=])")

ALLOW_DIRECTIVE = re.compile(r"lint:allow\(([a-z0-9_-]+)\)")
TREAT_AS_DIRECTIVE = re.compile(r"lint:treat-as\(([^)]+)\)")
EXPECT_DIRECTIVE = re.compile(r"lint:expect\(([a-z0-9_-]+)\)")

RULE_IDS = ("wall-clock", "hot-alloc", "raw-unit")


@dataclass
class Violation:
    path: str
    line: int
    rule: str
    message: str


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literal *contents*, preserving
    every newline so line numbers survive. Handles //, /* */, "..",
    '..', and R"delim(..)delim" raw strings."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
            out.append(" ")
        elif c == "R" and nxt == '"' and (i == 0
                                          or not text[i - 1].isalnum()):
            j = i + 2
            while j < n and text[j] != "(":
                j += 1
            delim = text[i + 2:j]
            close = ")" + delim + '"'
            end = text.find(close, j)
            end = n if end < 0 else end + len(close)
            out.append('""')
            out.extend("\n" for ch in text[i:end] if ch == "\n")
            i = end
        elif c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":  # unterminated; bail at line end
                    break
                i += 1
            out.append(quote)
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def collect_directives(text: str):
    """Per-line lint:allow rules, and the optional treat-as path."""
    allows: dict[int, set[str]] = {}
    treat_as = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        for m in ALLOW_DIRECTIVE.finditer(line):
            allows.setdefault(lineno, set()).add(m.group(1))
        m = TREAT_AS_DIRECTIVE.search(line)
        if m:
            treat_as = m.group(1).strip()
    return allows, treat_as


def hot_function_bodies(stripped: str):
    """Yield (start_pos, body_text) for every SPRINTCON_HOT definition.
    A marker followed by `;` before any `{` is a declaration — skipped,
    as is the `#define SPRINTCON_HOT ...` line itself."""
    for m in re.finditer(r"\bSPRINTCON_HOT\b", stripped):
        line_start = stripped.rfind("\n", 0, m.start()) + 1
        if stripped[line_start:m.start()].lstrip().startswith("#"):
            continue  # the macro definition, not a marked function
        i = m.end()
        depth_paren = 0
        body_start = -1
        while i < len(stripped):
            c = stripped[i]
            if c == "(":
                depth_paren += 1
            elif c == ")":
                depth_paren -= 1
            elif c == ";" and depth_paren == 0:
                break  # declaration only
            elif c == "{" and depth_paren == 0:
                body_start = i
                break
            i += 1
        if body_start < 0:
            continue
        depth = 0
        j = body_start
        while j < len(stripped):
            if stripped[j] == "{":
                depth += 1
            elif stripped[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        yield body_start, stripped[body_start:j + 1]


def lint_file(path: str, rel_path: str, text: str) -> list[Violation]:
    allows, treat_as = collect_directives(text)
    effective = (treat_as or rel_path).replace(os.sep, "/")
    stripped = strip_comments_and_strings(text)
    violations: list[Violation] = []

    def add(rule: str, pos: int, message: str):
        line = line_of(stripped, pos)
        if rule in allows.get(line, ()):  # suppressed in a comment
            return
        violations.append(Violation(rel_path, line, rule, message))

    if any(effective.startswith(d) for d in DECISION_PATH_DIRS):
        for pattern, what in WALL_CLOCK_PATTERNS:
            for m in pattern.finditer(stripped):
                add("wall-clock", m.start(),
                    f"{what} in the decision path ({effective}); use the "
                    "SimClock / a seeded Rng (only src/obs may read wall "
                    "time)")

    for body_start, body in hot_function_bodies(stripped):
        for pattern, what in HOT_BANNED_PATTERNS:
            for m in pattern.finditer(body):
                add("hot-alloc", body_start + m.start(),
                    f"{what} in a SPRINTCON_HOT function; the tick path "
                    "must not allocate or downcast (hoist to construction "
                    "/ wiring time)")

    if (effective.endswith((".hpp", ".h"))
            and effective not in RAW_UNIT_EXEMPT):
        for m in RAW_UNIT_PATTERN.finditer(stripped):
            add("raw-unit", m.start(),
                f"raw `double {m.group(1)}` parameter; use the units.hpp "
                "strong types (units::Seconds, units::Watts, ...) or a "
                "role-suffixed name like dt_s / budget_w")

    return violations


def iter_source_files(root: str, paths: list[str]):
    for p in paths:
        absolute = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(absolute):
            yield absolute, os.path.relpath(absolute, root)
            continue
        for dirpath, _dirnames, filenames in os.walk(absolute):
            for name in sorted(filenames):
                if name.endswith((".cpp", ".hpp", ".h", ".cc")):
                    full = os.path.join(dirpath, name)
                    yield full, os.path.relpath(full, root)


def run_lint(root: str, paths: list[str]) -> int:
    total = 0
    files = 0
    for full, rel in iter_source_files(root, paths):
        with open(full, encoding="utf-8", errors="replace") as f:
            text = f.read()
        files += 1
        for v in lint_file(full, rel, text):
            total += 1
            print(f"{v.path}:{v.line}: [{v.rule}] {v.message}")
    if total:
        print(f"lint_invariants: {total} violation(s) in {files} file(s)",
              file=sys.stderr)
        return 1
    print(f"lint_invariants: OK ({files} files clean)")
    return 0


def run_self_test(corpus_dir: str) -> int:
    """Every corpus file must fire exactly its lint:expect()ed rules."""
    failures = 0
    checked = 0
    for dirpath, _dirnames, filenames in os.walk(corpus_dir):
        for name in sorted(filenames):
            if not name.endswith((".cpp", ".hpp", ".h", ".cc")):
                continue
            full = os.path.join(dirpath, name)
            with open(full, encoding="utf-8", errors="replace") as f:
                text = f.read()
            expected = set(EXPECT_DIRECTIVE.findall(text))
            unknown = expected - set(RULE_IDS)
            if unknown:
                print(f"SELF-TEST ERROR {name}: unknown rule id(s) "
                      f"{sorted(unknown)}", file=sys.stderr)
                failures += 1
                continue
            fired = {v.rule for v in lint_file(full, name, text)}
            checked += 1
            if fired != expected:
                failures += 1
                print(f"SELF-TEST FAIL {name}: expected "
                      f"{sorted(expected) or '[]'}, fired "
                      f"{sorted(fired) or '[]'}", file=sys.stderr)
    if checked == 0:
        print(f"SELF-TEST ERROR: no corpus files under {corpus_dir}",
              file=sys.stderr)
        return 2
    if failures:
        print(f"lint_invariants self-test: {failures}/{checked} corpus "
              "file(s) FAILED", file=sys.stderr)
        return 1
    print(f"lint_invariants self-test: OK ({checked} corpus files)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="SprintCon project-invariant linter (DESIGN.md sec. 11)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint "
                             "(default: src, relative to --root)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: the parent of this "
                             "script's directory)")
    parser.add_argument("--self-test", metavar="CORPUS_DIR",
                        help="run the golden-corpus self-test instead of "
                             "linting")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if args.self_test:
        corpus = (args.self_test if os.path.isabs(args.self_test)
                  else os.path.join(root, args.self_test))
        if not os.path.isdir(corpus):
            print(f"no such corpus dir: {corpus}", file=sys.stderr)
            return 2
        return run_self_test(corpus)

    paths = args.paths or ["src"]
    for p in paths:
        absolute = p if os.path.isabs(p) else os.path.join(root, p)
        if not os.path.exists(absolute):
            print(f"no such path: {absolute}", file=sys.stderr)
            return 2
    return run_lint(root, paths)


if __name__ == "__main__":
    sys.exit(main())
