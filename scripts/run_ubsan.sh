#!/usr/bin/env bash
# Build the FULL test suite under UndefinedBehaviorSanitizer and run it —
# including the `fault` chaos sweeps and the export fuzz harness, whose
# whole point is proving the parsers and injectors are UB-free on hostile
# input. Equivalent to:
#   cmake --preset ubsan && cmake --build --preset ubsan && ctest --preset ubsan
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build-ubsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPRINTCON_UBSAN=ON \
  -DSPRINTCON_BUILD_BENCH=OFF \
  -DSPRINTCON_BUILD_EXAMPLES=OFF
cmake --build build-ubsan -j "$(nproc)"
ctest --test-dir build-ubsan --output-on-failure -j "$(nproc)" "$@"
