#!/usr/bin/env bash
# Build the FULL test suite under UndefinedBehaviorSanitizer and run it.
# Thin wrapper over the parameterized driver; the flavor table (targets,
# ctest label) lives in run_sanitizer.sh.
exec "$(dirname "$0")/run_sanitizer.sh" ubsan "$@"
