#!/usr/bin/env python3
"""Plot the CSV artifacts written by the bench harnesses.

Usage:
    # 1. generate artifacts
    ./build/bench/fig5_uncontrolled --csv artifacts
    ./build/bench/fig6_power_behavior --csv artifacts
    ./build/bench/fig7_frequency_behavior --csv artifacts
    # 2. plot everything found
    python3 scripts/plot_figures.py artifacts [-o plots/]

Each CSV has a `time_s` column plus one column per recorded channel; this
script renders the channels a figure needs (power channels for fig5/fig6,
frequency channels for fig7) into PNG files. Requires matplotlib.
"""
import argparse
import csv
import pathlib
import sys


def read_csv(path):
    with open(path, newline="") as fh:
        rows = list(csv.reader(fh))
    header, data = rows[0], rows[1:]
    cols = {name: [] for name in header}
    for row in data:
        for name, cell in zip(header, row):
            cols[name].append(float(cell))
    return cols


POWER_CHANNELS = ["total_power_w", "cb_power_w", "ups_power_w", "cb_budget_w"]
FREQ_CHANNELS = ["freq_interactive", "freq_batch"]


def plot_file(path, out_dir, plt):
    cols = read_csv(path)
    t = [x / 60.0 for x in cols["time_s"]]  # minutes
    stem = path.stem

    def render(channels, ylabel, suffix):
        present = [c for c in channels if c in cols]
        if not present:
            return
        fig, ax = plt.subplots(figsize=(8, 3.2))
        for name in present:
            ax.plot(t, cols[name], label=name.replace("_", " "), linewidth=1.1)
        ax.set_xlabel("time (min)")
        ax.set_ylabel(ylabel)
        ax.set_title(f"{stem} — {ylabel}")
        ax.legend(loc="best", fontsize=8)
        ax.grid(alpha=0.3)
        fig.tight_layout()
        out = out_dir / f"{stem}_{suffix}.png"
        fig.savefig(out, dpi=140)
        plt.close(fig)
        print(f"wrote {out}")

    render(POWER_CHANNELS, "power (W)", "power")
    render(FREQ_CHANNELS, "normalized frequency", "freq")
    render(["battery_soc", "cb_thermal_stress"], "state (0-1)", "state")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact_dir", type=pathlib.Path)
    parser.add_argument("-o", "--out", type=pathlib.Path, default=None,
                        help="output directory (default: the artifact dir)")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    out_dir = args.out or args.artifact_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    files = sorted(args.artifact_dir.glob("*.csv"))
    if not files:
        sys.exit(f"no CSV artifacts in {args.artifact_dir}")
    for path in files:
        plot_file(path, out_dir, plt)


if __name__ == "__main__":
    main()
