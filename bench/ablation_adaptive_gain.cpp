// Ablation: fixed linear power model vs. online RLS gain adaptation.
//
// The paper's controller uses a fixed offline model and relies on feedback
// to absorb the model error (Section V-C). This harness deliberately
// miscalibrates the platform (the real dP/df differs from the model) and
// compares the fixed-model controller against the adaptive one on
// tracking quality.
#include <cmath>
#include <iostream>
#include <memory>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/server_controller.hpp"
#include "sim/clock.hpp"
#include "workload/batch_profile.hpp"

namespace {

using namespace sprintcon;

std::unique_ptr<server::Rack> rack_with_gain_error(double cubic_share) {
  // Changing the cubic/linear split changes the true dP/df while the
  // controller keeps using the paper_platform() calibration.
  server::PlatformSpec spec = server::paper_platform();
  spec.cubic_power_share = cubic_share;
  Rng rng(99);
  std::vector<server::Server> servers;
  const auto profiles = workload::spec2006_profiles();
  std::size_t pi = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    std::vector<server::CpuCore> cores;
    for (std::size_t c = 0; c < spec.cores_per_server; ++c) {
      if (c < 4) {
        cores.emplace_back(spec.freq_min, spec.freq_max,
                           workload::InteractiveTraceGenerator(
                               workload::InteractiveTraceConfig{}, rng.split()));
      } else {
        cores.emplace_back(spec.freq_min, spec.freq_max,
                           std::make_unique<workload::BatchJob>(
                               profiles[pi++ % profiles.size()], 900.0, 1e6,
                               workload::CompletionMode::kRunOnce, rng.split()));
      }
    }
    servers.emplace_back(spec, std::move(cores), rng.split());
  }
  return std::make_unique<server::Rack>(std::move(servers));
}

double track(double cubic_share, bool adaptive, double* learned_gain) {
  auto rack = rack_with_gain_error(cubic_share);
  core::SprintConfig cfg = core::paper_config();
  cfg.adaptive_gain = adaptive;
  // The controller believes the *nominal* platform.
  core::ServerPowerController ctrl(
      cfg, *rack, server::LinearPowerModel(server::paper_platform()));
  ctrl.pin_interactive_at_peak();
  sim::SimClock clock(1.0);
  double sq_err = 0.0;
  int samples = 0;
  for (int t = 0; t < 600; ++t) {
    rack->step(clock);
    const double target = ((t / 60) % 2 == 0) ? 560.0 : 400.0;
    if (clock.every(cfg.control_period_s)) {
      ctrl.update(rack->total_power_w(), target, clock.now_s());
    }
    if (t % 60 >= 12) {
      const double e = ctrl.last_p_fb_w() - target;
      sq_err += e * e;
      ++samples;
    }
    clock.advance();
  }
  if (learned_gain != nullptr) *learned_gain = ctrl.effective_gain_w_per_f();
  return std::sqrt(sq_err / samples);
}

}  // namespace

int main() {
  std::cout << "Ablation - fixed model vs. online gain adaptation (RLS)\n"
            << "(square-wave P_batch tracking under platform miscalibration)\n\n";
  Table table({"true cubic share", "controller", "RMSE (W)",
               "gain used (W/f)"});
  const double model_gain =
      server::LinearPowerModel(server::paper_platform()).gain_w_per_f();
  for (double cubic : {0.1, 0.4, 0.8}) {
    for (bool adaptive : {false, true}) {
      double gain = model_gain;
      const double rmse = track(cubic, adaptive, &gain);
      table.add_row({format_fixed(cubic, 1), adaptive ? "adaptive" : "fixed",
                     format_fixed(rmse, 1), format_fixed(gain, 1)});
    }
  }
  std::cout << table.to_string();
  std::cout << "\nreading: feedback alone already absorbs moderate model\n"
               "error (the paper's design point); RLS adaptation recovers\n"
               "the true gain and tightens tracking when the calibration is\n"
               "badly off.\n";
  return 0;
}
