// Ablation: SprintCon without its UPS power controller.
//
// The server power controller alone caps the *batch* class, but interactive
// fluctuation above P_cb has to go somewhere: with the UPS controller
// disabled, it lands on the circuit breaker, which integrates the excess
// heat. This isolates the contribution of the paper's second controller —
// controllability of the CB power, not just the total.
//
// A no-sprinting PowerCap run is included as the opposite extreme: perfect
// safety, no overload, and the capacity loss that motivates sprinting in
// the first place.
#include <iostream>

#include "common/table.hpp"
#include "scenario/rig.hpp"

int main() {
  using namespace sprintcon;

  std::cout << "Ablation - the UPS power controller's contribution\n\n";
  Table table({"configuration", "trips", "CB stress max", "CB peak (W)",
               "f_inter", "f_batch", "UPS Wh", "deadlines"});

  struct Case {
    const char* name;
    scenario::Policy policy;
    bool ups_enabled;
  };
  const Case cases[] = {
      {"SprintCon (full)", scenario::Policy::kSprintCon, true},
      {"SprintCon, UPS ctrl OFF", scenario::Policy::kSprintCon, false},
      {"PowerCap (no sprint)", scenario::Policy::kPowerCap, true},
  };

  for (const Case& c : cases) {
    scenario::RigConfig config;
    config.policy = c.policy;
    config.sprint.ups_controller_enabled = c.ups_enabled;
    scenario::Rig rig(config);
    rig.run();
    const auto s = rig.summary();
    table.add_row(
        {c.name, std::to_string(s.cb_trips),
         format_fixed(rig.recorder().series("cb_thermal_stress").max(), 2),
         format_fixed(s.peak_cb_power_w, 0),
         format_fixed(s.avg_freq_interactive, 2),
         format_fixed(s.avg_freq_batch, 2),
         format_fixed(s.ups_discharged_wh, 1),
         s.all_deadlines_met ? "met" : "MISSED"});
  }
  std::cout << table.to_string();
  std::cout
      << "\nreading: without the UPS controller the breaker absorbs every\n"
         "interactive spike above the budget - its thermal stress climbs\n"
         "toward (or past) the trip threshold, which is exactly the unsafe\n"
         "'uncontrolled overload' the paper's Section IV-A forbids. The\n"
         "PowerCap row shows the other extreme: safe, but batch and\n"
         "interactive both pay the full oversubscription penalty.\n";
  return 0;
}
