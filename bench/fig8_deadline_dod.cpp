// Figure 8: batch deadlines and energy efficiency.
//
// (a) Normalized time use vs. deadline (9 / 12 / 15 minutes): every
//     controlled policy meets the deadline, but only SprintCon uses the
//     slack — finishing close to the deadline and saving power — while
//     the baselines run batch unnecessarily fast.
// (b) UPS depth of discharge vs. deadline, with the LFP cycle-life and
//     battery-replacement consequences (paper: SprintCon 17% @ 12 min vs.
//     31% for V1/V2 -> >40,000 vs. <10,000 cycles).
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "power/battery.hpp"
#include "scenario/rig.hpp"

int main() {
  using namespace sprintcon;

  const double deadlines_min[] = {9.0, 12.0, 15.0};
  const scenario::Policy policies[] = {
      scenario::Policy::kSprintCon, scenario::Policy::kSgctV1,
      scenario::Policy::kSgctV2, scenario::Policy::kSgct};

  struct Cell {
    metrics::RunSummary summary;
  };
  std::vector<std::vector<Cell>> grid;

  for (double dl : deadlines_min) {
    std::vector<Cell> row;
    for (auto policy : policies) {
      scenario::RigConfig config;
      config.policy = policy;
      config.batch_deadline_s = dl * 60.0;
      row.push_back({scenario::run_policy(config)});
    }
    grid.push_back(std::move(row));
  }

  std::cout << "Figure 8(a) - normalized time use (worst completion / "
               "deadline; 1.0 = finishes exactly at the deadline)\n\n";
  Table a({"deadline", "SprintCon", "SGCT-V1", "SGCT-V2", "SGCT",
           "deadlines met"});
  for (std::size_t d = 0; d < grid.size(); ++d) {
    bool all_met = true;
    std::vector<std::string> row{format_fixed(deadlines_min[d], 0) + " min"};
    for (const Cell& c : grid[d]) {
      row.push_back(format_fixed(c.summary.normalized_time_use, 2));
      all_met = all_met && c.summary.all_deadlines_met;
    }
    row.push_back(all_met ? "all" : "NOT all");
    a.add_row(std::move(row));
  }
  std::cout << a.to_string();
  std::cout << "(paper shape: SprintCon closest to 1.0; baselines finish "
               "early)\n\n";

  std::cout << "Figure 8(b) - UPS depth of discharge and battery life\n\n";
  Table b({"deadline", "policy", "DoD", "LFP cycles", "battery life @10/day"});
  for (std::size_t d = 0; d < grid.size(); ++d) {
    for (std::size_t p = 0; p < grid[d].size(); ++p) {
      const auto& s = grid[d][p].summary;
      b.add_row({format_fixed(deadlines_min[d], 0) + " min", s.label,
                 format_percent(s.depth_of_discharge),
                 format_fixed(s.battery_cycle_life, 0),
                 format_fixed(s.battery_lifetime_days / 365.0, 1) + " yr"});
    }
  }
  std::cout << b.to_string();

  const auto& ours12 = grid[1][0].summary;
  const auto& v1_12 = grid[1][1].summary;
  std::cout << "\npaper anchor @12 min: SprintCon DoD 17% (measured "
            << format_percent(ours12.depth_of_discharge) << "), SGCT-V1 31% "
            << "(measured " << format_percent(v1_12.depth_of_discharge)
            << ")\n";
  return 0;
}
