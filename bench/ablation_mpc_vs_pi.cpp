// Ablation: MPC vs. a classical PI loop for the server power controller.
//
// Both controllers track the same P_batch target on the same rack. The PI
// loop commands one uniform batch frequency (it is SISO); the MPC assigns
// per-core frequencies weighted by deadline urgency (Eq. 8's R weights).
// Expected outcome: similar aggregate tracking, but the MPC balances job
// completion times while the PI loop lets slow (memory-bound) jobs lag.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "control/pid.hpp"
#include "core/server_controller.hpp"
#include "sim/clock.hpp"
#include "workload/batch_profile.hpp"

namespace {

using namespace sprintcon;

std::unique_ptr<server::Rack> batch_rack() {
  const server::PlatformSpec spec = server::paper_platform();
  Rng rng(66);
  std::vector<server::Server> servers;
  const auto profiles = workload::spec2006_profiles();
  std::size_t pi = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    std::vector<server::CpuCore> cores;
    for (std::size_t c = 0; c < spec.cores_per_server; ++c) {
      if (c < 4) {
        cores.emplace_back(spec.freq_min, spec.freq_max,
                           workload::InteractiveTraceGenerator(
                               workload::InteractiveTraceConfig{}, rng.split()));
      } else {
        cores.emplace_back(spec.freq_min, spec.freq_max,
                           std::make_unique<workload::BatchJob>(
                               profiles[pi++ % profiles.size()], 720.0, 380.0,
                               workload::CompletionMode::kRunOnce, rng.split()));
      }
    }
    servers.emplace_back(spec, std::move(cores), rng.split());
  }
  return std::make_unique<server::Rack>(std::move(servers));
}

struct Outcome {
  double rmse_w = 0.0;
  double completion_spread_s = 0.0;  // latest - earliest job completion
  std::size_t completed = 0;
};

Outcome finish(server::Rack& rack, double sq_err, int samples) {
  Outcome o;
  o.rmse_w = std::sqrt(sq_err / std::max(samples, 1));
  double earliest = 1e18, latest = 0.0;
  for (const auto& ref : rack.batch_cores()) {
    const auto& job = *rack.core(ref).job();
    if (job.completion_time_s() >= 0.0) {
      ++o.completed;
      earliest = std::min(earliest, job.completion_time_s());
      latest = std::max(latest, job.completion_time_s());
    }
  }
  o.completion_spread_s = o.completed ? latest - earliest : 0.0;
  return o;
}

Outcome run_mpc(double target_w) {
  auto rack = batch_rack();
  const core::SprintConfig cfg = core::paper_config();
  core::ServerPowerController ctrl(
      cfg, *rack, server::LinearPowerModel(server::paper_platform()));
  ctrl.pin_interactive_at_peak();
  sim::SimClock clock(1.0);
  double sq_err = 0.0;
  int samples = 0;
  for (int t = 0; t < 900; ++t) {
    rack->step(clock);
    if (clock.every(cfg.control_period_s)) {
      ctrl.update(rack->total_power_w(), target_w, clock.now_s());
    }
    // RMSE over the settled window before any job completes (afterwards
    // the target may be unreachable and the error means nothing).
    if (t > 30 && t < 350) {
      const double e = ctrl.last_p_fb_w() - target_w;
      sq_err += e * e;
      ++samples;
    }
    clock.advance();
  }
  return finish(*rack, sq_err, samples);
}

Outcome run_pi(double target_w) {
  auto rack = batch_rack();
  const server::LinearPowerModel model(server::paper_platform());
  // PI on the aggregate: output is one uniform normalized frequency.
  control::PidConfig pid;
  pid.kp = 0.0006;
  pid.ki = 0.0012;
  pid.output_min = 0.2;
  pid.output_max = 1.0;
  control::PiController pi(pid);
  rack->for_each_core(server::CoreRole::kInteractive,
                      [](server::CpuCore& c) { c.set_freq(c.freq_max()); });

  sim::SimClock clock(1.0);
  double sq_err = 0.0;
  int samples = 0;
  for (int t = 0; t < 900; ++t) {
    rack->step(clock);
    // Same feedback signal the MPC uses (Eq. 6).
    double p_inter = 0.0;
    for (const auto& s : rack->servers()) {
      for (const auto& c : s.cores()) {
        if (!c.is_batch()) p_inter += model.interactive_power_w(c.utilization());
      }
    }
    const double p_fb = std::max(0.0, rack->total_power_w() - p_inter);
    if (clock.every(2.0)) {
      const double f = pi.step(target_w, p_fb, 2.0);
      rack->for_each_core(server::CoreRole::kBatch, [f](server::CpuCore& c) {
        c.set_freq(c.job()->completed() ? c.freq_min() : f);
      });
    }
    if (t > 30 && t < 350) {
      const double e = p_fb - target_w;
      sq_err += e * e;
      ++samples;
    }
    clock.advance();
  }
  return finish(*rack, sq_err, samples);
}

}  // namespace

int main() {
  std::cout << "Ablation - MPC vs. PI server power controller\n"
            << "(constant P_batch target on a 4-server rack, 15 minutes)\n\n";

  Table table({"target (W)", "controller", "tracking RMSE (W)",
               "jobs completed", "completion spread (s)"});
  for (double target : {450.0, 550.0}) {
    const Outcome mpc = run_mpc(target);
    const Outcome pi = run_pi(target);
    table.add_row({format_fixed(target, 0), "MPC", format_fixed(mpc.rmse_w, 1),
                   std::to_string(mpc.completed),
                   format_fixed(mpc.completion_spread_s, 0)});
    table.add_row({format_fixed(target, 0), "PI", format_fixed(pi.rmse_w, 1),
                   std::to_string(pi.completed),
                   format_fixed(pi.completion_spread_s, 0)});
  }
  std::cout << table.to_string();
  std::cout << "\nreading: both loops track the aggregate budget, but the\n"
               "MPC's per-core R weights shrink the spread between the\n"
               "earliest and latest job completion - the progress balancing\n"
               "of Section V-B that a SISO PI loop cannot express.\n";
  return 0;
}
