// Ablation: staggered vs. synchronized CB overload windows across racks.
//
// A facility hosting several sprinting racks sees the *sum* of their CB
// draws. If every rack overloads on the same schedule, the facility feed
// inherits the full square wave; staggering the windows (offsetting each
// rack's schedule by cycle/K) keeps the aggregate nearly flat — the same
// peak-shaving idea the paper applies within one rack, lifted one level up.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "scenario/facility.hpp"

int main(int argc, char** argv) {
  using namespace sprintcon;
  const auto options = parse_bench_options(argc, argv);

  std::cout << "Ablation - facility-level overload staggering (4 racks "
               "sprinting 15 minutes)\n\n";
  Table table({"schedule", "facility peak (kW)", "facility mean (kW)",
               "peak/mean", "racks safe"});

  for (bool staggered : {false, true}) {
    scenario::FacilityConfig config;
    config.num_racks = 4;
    config.staggered = staggered;
    scenario::Facility facility(config);
    facility.run();

    const TimeSeries cb = facility.facility_cb_power();
    bool all_safe = true;
    for (const auto& summary : facility.summaries()) {
      all_safe = all_safe && summary.cb_trips == 0 &&
                 summary.outage_start_s < 0.0;
    }
    table.add_row({staggered ? "staggered windows" : "synchronized windows",
                   format_fixed(cb.max() / 1000.0, 2),
                   format_fixed(cb.mean() / 1000.0, 2),
                   format_fixed(facility.cb_peak_to_mean(), 3),
                   all_safe ? "yes" : "NO"});

    const TimeSeries total = facility.facility_total_power();
    maybe_write_csv(options,
                    staggered ? "stagger_staggered" : "stagger_synchronized",
                    {&cb, &total});
  }
  std::cout << table.to_string();
  std::cout << "\nreading: staggering the racks' overload windows shaves the\n"
               "facility peak without touching any rack's own sprint - free\n"
               "headroom in the data-center level power budget the paper's\n"
               "introduction worries about.\n";
  return 0;
}
