// Ablation: battery-only UPS vs. hybrid battery+supercapacitor storage.
//
// SprintCon's UPS controller issues a spiky discharge command (it covers
// the interactive fluctuation above P_cb). With a plain battery every
// spike is battery wear; with the hybrid store (after [24]) the
// supercapacitor absorbs the transients and the battery sees only the
// smooth sustained component. This harness runs the canonical rig both
// ways and reports the battery-side wear.
#include <iostream>

#include "common/table.hpp"
#include "power/hybrid_store.hpp"
#include "power/wear.hpp"
#include "scenario/rig.hpp"

int main() {
  using namespace sprintcon;

  std::cout << "Ablation - UPS storage technology (SprintCon, 15-minute "
               "sprint)\n\n";
  Table table({"storage", "delivered Wh", "battery Wh", "supercap Wh",
               "battery DoD", "rainflow damage (1e-6 life/sprint)"});

  for (double supercap_wh : {0.0, 10.0, 20.0, 40.0}) {
    scenario::RigConfig config;
    config.supercap_wh = supercap_wh;
    scenario::Rig rig(config);
    rig.run();

    double battery_wh = rig.power_path().battery().total_discharged_wh();
    double supercap_out = 0.0;
    double battery_dod =
        battery_wh / rig.power_path().battery().capacity_wh();
    if (const auto* hybrid = dynamic_cast<const power::HybridStore*>(
            &rig.power_path().battery())) {
      battery_wh = hybrid->battery().total_discharged_wh();
      supercap_out = hybrid->supercap().total_discharged_wh();
      battery_dod = battery_wh / hybrid->battery().capacity_wh();
    }
    const double delivered =
        rig.recorder().series("ups_power_w").integral() / 3600.0;

    // Profile-aware wear: rainflow-count the battery's SOC trace.
    const double damage = power::rainflow_damage(
        rig.recorder().series("battery_component_soc").values());

    table.add_row({supercap_wh == 0.0
                       ? std::string("battery only")
                       : "hybrid +" + format_fixed(supercap_wh, 0) + " Wh cap",
                   format_fixed(delivered, 1), format_fixed(battery_wh, 1),
                   format_fixed(supercap_out, 1), format_percent(battery_dod),
                   format_fixed(damage * 1e6, 1)});
  }
  std::cout << table.to_string();
  std::cout << "\nreading: the supercap absorbs the interactive transients;\n"
               "the battery's depth of discharge (and hence replacement\n"
               "cadence) improves with even a few Wh of capacitance.\n";
  return 0;
}
