// Figure 2: circuit-breaker trip time vs. overload degree (Bulletin
// 1489-A style inverse-time curve).
//
// Prints the analytic curve and a brute-force simulation of the thermal
// breaker model at each point; the two must agree, and the curve must be
// nonlinear decreasing — the property that motivates controlling CB power
// to a *constant* budget (Section III).
#include <iostream>

#include "common/table.hpp"
#include "power/circuit_breaker.hpp"

int main() {
  using namespace sprintcon;

  const power::TripCurve curve = power::TripCurve::bulletin_1489a();
  std::cout << "Figure 2 - trip time vs. overload degree\n"
            << "(calibration: 1.25x trips at 170 s; the paper's 150 s "
               "overload windows stay ~88% below the threshold)\n\n";

  Table table({"overload", "analytic trip (s)", "simulated trip (s)",
               "safe window @90% (s)"});
  for (double overload : {1.05, 1.1, 1.15, 1.2, 1.25, 1.3, 1.4, 1.5, 1.75,
                          2.0, 2.5, 3.0}) {
    const double analytic = curve.trip_time_s(overload);

    power::CircuitBreaker cb(1000.0, curve);
    double t = 0.0;
    const double dt = 0.05;
    while (!cb.open() && t < 20000.0) {
      cb.deliver(1000.0 * overload, dt);
      t += dt;
    }
    table.add_row({format_fixed(overload, 2), format_fixed(analytic, 1),
                   format_fixed(t, 1), format_fixed(0.9 * analytic, 1)});
  }
  std::cout << table.to_string();

  std::cout << "\nnonlinearity check: t(1.25)/t(1.5) = "
            << format_fixed(curve.trip_time_s(1.25) / curve.trip_time_s(1.5), 2)
            << " but t(1.5)/t(3.0) = "
            << format_fixed(curve.trip_time_s(1.5) / curve.trip_time_s(3.0), 2)
            << " (not constant -> nonlinear, as in the paper)\n";
  return 0;
}
