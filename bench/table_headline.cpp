// Headline numbers (abstract / Section VII): SprintCon achieves 6-56%
// better computing performance and up to 87% less demand of energy
// storage than the state-of-the-art baselines.
//
// This harness regenerates both ranges from the canonical 15-minute rig.
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "metrics/summary.hpp"
#include "scenario/rig.hpp"

int main() {
  using namespace sprintcon;

  std::vector<metrics::RunSummary> runs;
  for (auto policy :
       {scenario::Policy::kSprintCon, scenario::Policy::kSgct,
        scenario::Policy::kSgctV1, scenario::Policy::kSgctV2}) {
    scenario::RigConfig config;
    config.policy = policy;
    config.completion = workload::CompletionMode::kRepeat;
    runs.push_back(scenario::run_policy(config));
  }

  std::cout << "Headline comparison (15-minute sprint, 12-minute "
               "deadlines)\n\n";
  metrics::print_summaries(std::cout, runs);

  const auto& ours = runs.front();
  double best_improve = 1e9, worst_improve = -1e9, best_storage = -1e9;
  Table table({"baseline", "capacity improvement", "storage reduction"});
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const double improve = metrics::capacity_improvement(
        ours.avg_freq_interactive, runs[i].avg_freq_interactive);
    const double storage = metrics::storage_reduction(
        ours.ups_discharged_wh, runs[i].ups_discharged_wh);
    best_improve = std::min(best_improve, improve);
    worst_improve = std::max(worst_improve, improve);
    best_storage = std::max(best_storage, storage);
    table.add_row({runs[i].label, format_percent(improve),
                   format_percent(storage)});
  }
  std::cout << '\n' << table.to_string();

  std::cout << "\nmeasured headline: " << format_percent(best_improve)
            << " - " << format_percent(worst_improve)
            << " better computing performance (paper: 6% - 56%), up to "
            << format_percent(best_storage)
            << " less energy-storage demand (paper: up to 87%)\n";
  return 0;
}
