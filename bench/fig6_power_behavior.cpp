// Figure 6: power behaviour of SprintCon vs. SGCT-V1 vs. SGCT-V2.
//
// Expected shape (paper): SprintCon rides the CB budget square wave — CB
// power pinned at 4.0 kW during overload windows and 3.2 kW during
// recovery — with the UPS covering only the fluctuating interactive gap,
// so the *total* curve fluctuates. V1/V2 instead hold the *total* flat at
// the budget, with the UPS and CB providing sprinting power in turn.
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "scenario/rig.hpp"

namespace {

void print_run(const char* title, sprintcon::scenario::Rig& rig) {
  using namespace sprintcon;
  rig.run();
  const auto& rec = rig.recorder();
  std::cout << title << "\n";
  Table table({"t (s)", "CB budget", "CB actual", "UPS", "Total"});
  for (std::size_t i = 0; i < rec.series("cb_power_w").size(); i += 30) {
    table.add_row({format_fixed(rec.series("cb_power_w").time_at(i), 0),
                   format_fixed(rec.series("cb_budget_w")[i], 0),
                   format_fixed(rec.series("cb_power_w")[i], 0),
                   format_fixed(rec.series("ups_power_w")[i], 0),
                   format_fixed(rec.series("total_power_w")[i], 0)});
  }
  std::cout << table.to_string();

  const auto summary = rig.summary();
  std::cout << "  CB energy " << format_fixed(summary.cb_energy_wh, 0)
            << " Wh, UPS energy " << format_fixed(summary.ups_discharged_wh, 0)
            << " Wh, total-power stddev "
            << format_fixed(rec.series("total_power_w").stddev(), 0)
            << " W\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = sprintcon::parse_bench_options(argc, argv);
  using namespace sprintcon;

  std::cout << "Figure 6 - power behaviour comparison\n\n";
  for (auto [policy, title] :
       {std::pair{scenario::Policy::kSprintCon, "(a) SprintCon"},
        std::pair{scenario::Policy::kSgctV1, "(b) SGCT-V1"},
        std::pair{scenario::Policy::kSgctV2, "(c) SGCT-V2"}}) {
    scenario::RigConfig config;
    config.policy = policy;
    config.completion = workload::CompletionMode::kRepeat;
    scenario::Rig rig(config);
    print_run(title, rig);
    maybe_write_csv(options,
                    std::string("fig6_") + scenario::to_string(policy),
                    rig.recorder().all_series());
  }

  std::cout << "expected shape: SprintCon's CB-actual tracks the square-wave "
               "budget and its total fluctuates with interactive load;\n"
               "V1/V2 keep the total nearly flat at 4.0 kW and lean on the "
               "UPS only while the breaker recovers.\n";
  return 0;
}
