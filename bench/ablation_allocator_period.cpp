// Ablation: allocator period.
//
// Section V-C requires the power load allocator to adjust P_batch slower
// than the MPC settling time so the inner loop converges between target
// moves. This sweep shows what happens when the outer loop runs too fast
// (target churn) or too slow (sluggish adaptation).
#include <iostream>

#include "common/table.hpp"
#include "scenario/rig.hpp"

int main() {
  using namespace sprintcon;

  std::cout << "Ablation - allocator period (SprintCon)\n\n";
  Table table({"period (s)", "f_inter", "f_batch", "UPS Wh", "DoD",
               "deadlines met", "time use"});

  for (double period_s : {5.0, 10.0, 30.0, 60.0, 120.0}) {
    scenario::RigConfig config;
    config.sprint.allocator_period_s = period_s;
    scenario::Rig rig(config);
    rig.run();
    const auto s = rig.summary();
    table.add_row({format_fixed(period_s, 0), format_fixed(s.avg_freq_interactive, 2),
                   format_fixed(s.avg_freq_batch, 2),
                   format_fixed(s.ups_discharged_wh, 0),
                   format_percent(s.depth_of_discharge),
                   s.all_deadlines_met ? "yes" : "NO",
                   format_fixed(s.normalized_time_use, 2)});
  }
  std::cout << table.to_string();
  std::cout << "\npaper setting: 30 s - slow enough for the 2 s MPC loop to "
               "settle, fast\nenough to track interactive load shifts.\n";
  return 0;
}
