// Figure 3: an example of periodic computational sprinting with a period
// of about 18 seconds (the short-timescale regime of Raghavan et al. that
// Section IV-A contrasts with SprintCon's long-term sprinting).
//
// We run a small rack whose breaker is overloaded in 3-second windows with
// 15-second recovery gaps (an 18 s period) and print the resulting
// square-wave of CB power and batch frequency.
#include <iostream>

#include "common/table.hpp"
#include "common/cli.hpp"
#include "scenario/rig.hpp"

int main(int argc, char** argv) {
  const auto options = sprintcon::parse_bench_options(argc, argv);
  using namespace sprintcon;

  scenario::RigConfig config;
  config.num_servers = 4;
  config.sprint.cb_rated_w = 4.0 * 300.0 * (2.0 / 3.0);  // 800 W
  config.ups_capacity_wh = 100.0;
  config.sprint.cb_overload_duration_s = 3.0;
  config.sprint.cb_recovery_duration_s = 15.0;
  config.sprint.allocator_period_s = 6.0;
  config.sprint.control_period_s = 1.0;
  config.sprint.mpc.control_period_s = 1.0;
  config.duration_s = 90.0;
  config.batch_deadline_s = 90.0;
  config.batch_work_scale = 0.15;  // short jobs for a short demo

  scenario::Rig rig(config);
  rig.run();

  std::cout << "Figure 3 - periodic sprinting, period = "
            << config.sprint.cb_overload_duration_s +
                   config.sprint.cb_recovery_duration_s
            << " s (paper example: ~18 s)\n\n";

  Table table({"t (s)", "CB budget (W)", "CB power (W)", "batch freq"});
  const auto& rec = rig.recorder();
  for (std::size_t i = 0; i < rec.series("cb_power_w").size(); i += 3) {
    table.add_row({format_fixed(rec.series("cb_power_w").time_at(i), 0),
                   format_fixed(rec.series("cb_budget_w")[i], 0),
                   format_fixed(rec.series("cb_power_w")[i], 0),
                   format_fixed(rec.series("freq_batch")[i], 2)});
  }
  std::cout << table.to_string();

  // The square wave: budget alternates between rated and overload.
  const auto& budget = rec.series("cb_budget_w");
  std::cout << "\nbudget range: " << budget.min() << " - " << budget.max()
            << " W; breaker trips: " << rig.summary().cb_trips
            << " (periodic overload keeps the breaker safe)\n";
  if (const std::string path = maybe_write_csv(
          options, "fig3_periodic_sprint", rig.recorder().all_series());
      !path.empty()) {
    std::cout << "\nseries written to " << path << '\n';
  }
  return 0;
}
