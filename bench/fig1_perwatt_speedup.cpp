// Figure 1: per-watt speedup vs. processor frequency for six sprint
// kernels (after Raghavan et al.'s testbed analysis).
//
// Per-watt speedup = (speedup relative to peak) / (sprinting power
// relative to peak). Sprinting power is the *dynamic* (additional) power;
// the cubic frequency term and the memory-bound plateau of each kernel
// make the ratio fall as frequency rises — the reason SprintCon prefers
// low-power, long-duration sprints.
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "server/power_model.hpp"
#include "workload/batch_profile.hpp"
#include "workload/progress_model.hpp"

int main() {
  using namespace sprintcon;

  const server::MeasurementPowerModel power(server::paper_platform());
  const auto kernels = workload::sprint_kernel_profiles();

  std::cout << "Figure 1 - per-watt speedup vs. normalized frequency\n"
            << "(paper shape: decreasing with frequency for all six "
               "workloads)\n\n";

  std::vector<std::string> cols{"freq"};
  for (const auto& k : kernels) cols.push_back(k.name);
  Table table(std::move(cols));

  for (double f = 0.2; f <= 1.001; f += 0.1) {
    std::vector<std::string> row{format_fixed(f, 1)};
    for (const auto& k : kernels) {
      const workload::ProgressModel model(k.compute_fraction);
      const double speedup = model.rate(f) / model.rate(1.0);
      const double rel_power = power.core_dynamic_w(f, k.utilization) /
                               power.core_dynamic_w(1.0, k.utilization);
      row.push_back(format_fixed(speedup / rel_power, 3));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.to_string();

  // Verify the paper's qualitative claim programmatically.
  bool monotone = true;
  for (const auto& k : kernels) {
    const workload::ProgressModel model(k.compute_fraction);
    double prev = 1e9;
    for (double f = 0.3; f <= 1.001; f += 0.1) {
      const double v = (model.rate(f) / model.rate(1.0)) /
                       (power.core_dynamic_w(f, k.utilization) /
                        power.core_dynamic_w(1.0, k.utilization));
      if (v > prev + 1e-9) monotone = false;
      prev = v;
    }
  }
  std::cout << "\nper-watt speedup decreasing in frequency for all kernels: "
            << (monotone ? "yes (matches paper)" : "NO") << '\n';
  return 0;
}
