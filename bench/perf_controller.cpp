// google-benchmark microbenchmarks: controller and simulator kernels.
//
// These quantify the runtime cost of the control stack itself — the MPC
// solve that would run every 2 s on a rack controller, the eigenvalue
// analysis, and full simulation throughput.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "control/eigen.hpp"
#include "control/mpc.hpp"
#include "control/qp.hpp"
#include "scenario/rig.hpp"

namespace {

using namespace sprintcon;

void BM_MpcStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  control::MpcConfig cfg;
  cfg.prediction_horizon = 8;
  cfg.control_horizon = 2;
  control::MpcPowerController mpc(cfg);
  control::MpcProblem p;
  p.gains_w_per_f.assign(n, 20.0);
  p.freq_current.assign(n, 0.5);
  p.freq_min.assign(n, 0.2);
  p.freq_max.assign(n, 1.0);
  p.penalty_weights.assign(n, 4.0);
  p.power_feedback_w = 20.0 * 0.5 * static_cast<double>(n);
  p.power_target_w = p.power_feedback_w * 1.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpc.step(p));
  }
  state.SetLabel(std::to_string(n) + " cores");
}
BENCHMARK(BM_MpcStep)->Arg(8)->Arg(64)->Arg(128)->Arg(256);

void BM_BoxQpSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  control::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  control::BoxQp qp;
  qp.hessian = a.transposed() * a;
  for (std::size_t i = 0; i < n; ++i) qp.hessian(i, i) += 1.0;
  qp.gradient.assign(n, -1.0);
  qp.lower.assign(n, 0.0);
  qp.upper.assign(n, 1.0);
  const control::Vector x0(n, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(control::solve_box_qp(qp, x0));
  }
}
BENCHMARK(BM_BoxQpSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_Eigenvalues(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  control::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(control::eigenvalues(a));
  }
}
BENCHMARK(BM_Eigenvalues)->Arg(8)->Arg(32)->Arg(64);

void BM_RigTick(benchmark::State& state) {
  scenario::RigConfig config;
  config.duration_s = 1e9;  // never self-terminates; we drive ticks
  scenario::Rig rig(config);
  for (auto _ : state) {
    rig.simulation().step_once();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("16 servers / 128 cores per simulated second");
}
BENCHMARK(BM_RigTick);

}  // namespace

BENCHMARK_MAIN();
