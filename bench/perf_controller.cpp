// google-benchmark microbenchmarks: controller and simulator kernels.
//
// These quantify the runtime cost of the control stack itself — the MPC
// solve that would run every 2 s on a rack controller, the eigenvalue
// analysis, and full simulation throughput.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "control/eigen.hpp"
#include "control/mpc.hpp"
#include "control/qp.hpp"
#include "scenario/facility.hpp"
#include "scenario/rig.hpp"

namespace {

using namespace sprintcon;

control::MpcProblem mpc_bench_problem(std::size_t n) {
  control::MpcProblem p;
  p.gains_w_per_f.assign(n, 20.0);
  p.freq_current.assign(n, 0.5);
  p.freq_min.assign(n, 0.2);
  p.freq_max.assign(n, 1.0);
  p.penalty_weights.assign(n, 4.0);
  p.power_feedback_w = 20.0 * 0.5 * static_cast<double>(n);
  p.power_target_w = p.power_feedback_w * 1.3;
  return p;
}

void run_mpc_step_bench(benchmark::State& state, bool use_dense_qp) {
  const auto n = static_cast<std::size_t>(state.range(0));
  control::MpcConfig cfg;
  cfg.prediction_horizon = 8;
  cfg.control_horizon = 2;
  cfg.use_dense_qp = use_dense_qp;
  control::MpcPowerController mpc(cfg);
  const control::MpcProblem p = mpc_bench_problem(n);
  control::MpcOutput out;
  for (auto _ : state) {
    mpc.step(p, out);
    benchmark::DoNotOptimize(out.freq_next.data());
  }
  state.SetLabel(std::to_string(n) + " cores");
}

// Structured operator path (the default): O(n Lc) per solver iteration.
// Observability is left detached here, so this also proves the disabled
// ObsSink costs one branch per emit site (compare BM_MpcStepObserved).
void BM_MpcStep(benchmark::State& state) { run_mpc_step_bench(state, false); }
BENCHMARK(BM_MpcStep)->Arg(8)->Arg(64)->Arg(128)->Arg(256);

// Same solve with a live ObsSink attached: counters + exit-residual and
// wall-time histograms per step. The delta versus BM_MpcStep is the
// enabled-mode observability overhead recorded in DESIGN.md.
void BM_MpcStepObserved(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  control::MpcConfig cfg;
  cfg.prediction_horizon = 8;
  cfg.control_horizon = 2;
  control::MpcPowerController mpc(cfg);
  obs::ObsSink sink;
  mpc.set_obs(&sink);
  const control::MpcProblem p = mpc_bench_problem(n);
  control::MpcOutput out;
  for (auto _ : state) {
    mpc.step(p, out);
    benchmark::DoNotOptimize(out.freq_next.data());
  }
  const obs::MetricsSnapshot snap = sink.metrics().snapshot();
  const double solves =
      static_cast<double>(snap.counter("mpc.solves.structured"));
  if (solves > 0) {
    state.counters["qp_iterations_per_solve"] = benchmark::Counter(
        static_cast<double>(snap.counter("mpc.qp.iterations")) / solves);
    state.counters["qp_restarts_per_solve"] = benchmark::Counter(
        static_cast<double>(snap.counter("mpc.qp.restarts")) / solves);
  }
  state.SetLabel(std::to_string(n) + " cores, obs on");
}
BENCHMARK(BM_MpcStepObserved)->Arg(8)->Arg(256);

// Dense reference path: materialized (n Lc)^2 Hessian + power iteration.
void BM_MpcStepDense(benchmark::State& state) {
  run_mpc_step_bench(state, true);
}
BENCHMARK(BM_MpcStepDense)->Arg(8)->Arg(64)->Arg(256);

void BM_BoxQpSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  control::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  control::BoxQp qp;
  qp.hessian = a.transposed() * a;
  for (std::size_t i = 0; i < n; ++i) qp.hessian(i, i) += 1.0;
  qp.gradient.assign(n, -1.0);
  qp.lower.assign(n, 0.0);
  qp.upper.assign(n, 1.0);
  const control::Vector x0(n, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(control::solve_box_qp(qp, x0));
  }
}
BENCHMARK(BM_BoxQpSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_Eigenvalues(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  control::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(control::eigenvalues(a));
  }
}
BENCHMARK(BM_Eigenvalues)->Arg(8)->Arg(32)->Arg(64);

// Facility throughput: whole short sprints across 1/4/16 racks, run by the
// facility thread pool (one worker per hardware thread). Construction is
// included — the facility cannot be re-run — but the simulation dominates.
void BM_FacilityRun(benchmark::State& state) {
  const auto racks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    scenario::FacilityConfig cfg;
    cfg.num_racks = racks;
    cfg.rack.num_servers = 2;
    cfg.rack.sprint.cb_rated_w = 2.0 * 300.0 * (2.0 / 3.0);
    cfg.rack.ups_capacity_wh = 50.0;
    cfg.rack.duration_s = 60.0;
    scenario::Facility facility(cfg);
    facility.run();
    benchmark::DoNotOptimize(facility.rig(0).recorder());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(racks));
  state.SetLabel(std::to_string(racks) + " racks x 60 s");
}
BENCHMARK(BM_FacilityRun)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Same workload forced sequential, for the scaling comparison.
void BM_FacilityRunSequential(benchmark::State& state) {
  const auto racks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    scenario::FacilityConfig cfg;
    cfg.num_racks = racks;
    cfg.run_threads = 1;
    cfg.rack.num_servers = 2;
    cfg.rack.sprint.cb_rated_w = 2.0 * 300.0 * (2.0 / 3.0);
    cfg.rack.ups_capacity_wh = 50.0;
    cfg.rack.duration_s = 60.0;
    scenario::Facility facility(cfg);
    facility.run();
    benchmark::DoNotOptimize(facility.rig(0).recorder());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(racks));
  state.SetLabel(std::to_string(racks) + " racks x 60 s");
}
BENCHMARK(BM_FacilityRunSequential)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Fleet-scale sharded scaling: aggregate simulated-tick throughput over
// many small rigs (2 servers / 16 cores each, 30 simulated seconds at
// 1 s ticks, one allocator epoch every 10 s). Arg0 = rigs, Arg1 = worker
// shards (0 = one per hardware thread). Construction happens outside the
// timed region — items/s is pure simulation throughput, in aggregate
// rig-ticks per second. Compare threads=1 vs threads=0 rows for the
// parallel speedup; on a single-core host they coincide.
void BM_FacilityScaling(benchmark::State& state) {
  const auto rigs = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  scenario::FacilityConfig cfg;
  cfg.num_racks = rigs;
  cfg.run_threads = threads;
  cfg.epoch_s = 10.0;
  cfg.rack.num_servers = 2;
  cfg.rack.sprint.cb_rated_w = 2.0 * 300.0 * (2.0 / 3.0);
  cfg.rack.ups_capacity_wh = 50.0;
  cfg.rack.duration_s = 30.0;
  const auto ticks_per_rig = static_cast<std::int64_t>(
      cfg.rack.duration_s / cfg.rack.dt_s);
  std::size_t shards = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto facility = std::make_unique<scenario::Facility>(cfg);
    shards = facility->num_shards();
    state.ResumeTiming();
    facility->run();
    benchmark::DoNotOptimize(facility->rig(0).recorder());
    state.PauseTiming();
    facility.reset();  // destruction off the clock too
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rigs) * ticks_per_rig);
  state.counters["rigs"] =
      benchmark::Counter(static_cast<double>(rigs));
  state.counters["shards"] =
      benchmark::Counter(static_cast<double>(shards));
  state.SetLabel(std::to_string(rigs) + " rigs x 30 s, " +
                 std::to_string(shards) + " shards");
}
BENCHMARK(BM_FacilityScaling)
    ->Args({16, 1})
    ->Args({16, 0})
    ->Args({100, 1})
    ->Args({100, 0})
    ->Args({1000, 1})
    ->Args({1000, 0})
    ->Args({10000, 0})
    ->Unit(benchmark::kMillisecond);

void BM_RigTick(benchmark::State& state) {
  scenario::RigConfig config;
  config.duration_s = 1e9;  // never self-terminates; we drive ticks
  scenario::Rig rig(config);
  for (auto _ : state) {
    rig.simulation().step_once();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("16 servers / 128 cores per simulated second");
}
BENCHMARK(BM_RigTick);

}  // namespace

BENCHMARK_MAIN();
