// Ablation: CB overload policy.
//
// DESIGN.md calls out SprintCon's periodic-overload choice; this harness
// compares (1) the paper's periodic schedule, (2) continuous overload for
// the whole burst (what Section IV-A prescribes only for medium bursts),
// and (3) never overloading (rated CB only), on safety, batch speed, and
// UPS wear.
#include <iostream>

#include "common/table.hpp"
#include "scenario/rig.hpp"

int main() {
  using namespace sprintcon;

  std::cout << "Ablation - CB overload policy (SprintCon, 15-minute burst, "
               "12-minute deadlines)\n\n";

  Table table({"policy", "CB stress max", "trips", "f_batch", "UPS Wh", "DoD",
               "deadlines met", "time use"});

  struct Case {
    const char* name;
    void (*tweak)(scenario::RigConfig&);
  };
  const Case cases[] = {
      {"periodic (paper)", [](scenario::RigConfig&) {}},
      {"continuous overload",
       [](scenario::RigConfig& cfg) {
         // Treat the 15-minute burst as a single overload window.
         cfg.sprint.long_burst_s = 1200.0;  // classify as kContinuous
       }},
      {"never overload",
       [](scenario::RigConfig& cfg) {
         cfg.sprint.cb_overload_degree = 1.0;
       }},
  };

  for (const Case& c : cases) {
    scenario::RigConfig config;
    c.tweak(config);
    scenario::Rig rig(config);
    rig.run();
    const auto s = rig.summary();
    table.add_row(
        {c.name,
         format_fixed(rig.recorder().series("cb_thermal_stress").max(), 2),
         std::to_string(s.cb_trips), format_fixed(s.avg_freq_batch, 2),
         format_fixed(s.ups_discharged_wh, 0),
         format_percent(s.depth_of_discharge),
         s.all_deadlines_met ? "yes" : "NO",
         format_fixed(s.normalized_time_use, 2)});
  }
  std::cout << table.to_string();

  std::cout
      << "\nreading: continuous overload heats the breaker toward its trip\n"
         "threshold (stress -> 1.0) or forces the safety monitor to back\n"
         "off; never overloading shifts the entire sprint burden onto the\n"
         "UPS (higher DoD) or onto the batch class (lower f_batch).\n"
         "The paper's periodic schedule is the balanced point.\n";
  return 0;
}
