// Figure 7: frequency behaviour (computing capacity) of SprintCon vs.
// SGCT-V1 vs. SGCT-V2.
//
// Paper averages: SprintCon 1.00 interactive / 0.59 batch;
// SGCT-V1 0.84 / 0.91; SGCT-V2 0.94 / 0.84. The *shape* to reproduce:
// SprintCon pins interactive at peak and lets batch follow the CB budget
// square wave; the game-based baselines split capacity by utilization (V1)
// or interactive-first priority (V2).
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "scenario/rig.hpp"

int main(int argc, char** argv) {
  const auto options = sprintcon::parse_bench_options(argc, argv);
  using namespace sprintcon;

  std::cout << "Figure 7 - frequency behaviour comparison\n\n";

  struct Expected {
    scenario::Policy policy;
    const char* title;
    double paper_inter;
    double paper_batch;
  };
  const Expected cases[] = {
      {scenario::Policy::kSprintCon, "(a) SprintCon", 1.00, 0.59},
      {scenario::Policy::kSgctV1, "(b) SGCT-V1", 0.84, 0.91},
      {scenario::Policy::kSgctV2, "(c) SGCT-V2", 0.94, 0.84},
  };

  Table summary_table({"policy", "f_inter (measured)", "f_inter (paper)",
                       "f_batch (measured)", "f_batch (paper)"});

  for (const Expected& c : cases) {
    scenario::RigConfig config;
    config.policy = c.policy;
    config.completion = workload::CompletionMode::kRepeat;
    scenario::Rig rig(config);
    rig.run();
    const auto& rec = rig.recorder();

    std::cout << c.title << "\n";
    Table table({"minute", "f_interactive", "f_batch"});
    for (int m = 0; m < 15; ++m) {
      const double t0 = m * 60.0, t1 = t0 + 60.0;
      table.add_row(
          {std::to_string(m + 1),
           format_fixed(rec.series("freq_interactive").mean_between(t0, t1), 2),
           format_fixed(rec.series("freq_batch").mean_between(t0, t1), 2)});
    }
    std::cout << table.to_string() << '\n';

    maybe_write_csv(options, std::string("fig7_") + scenario::to_string(c.policy),
                    rig.recorder().all_series());
    const auto s = rig.summary();
    summary_table.add_row({s.label, format_fixed(s.avg_freq_interactive, 2),
                           format_fixed(c.paper_inter, 2),
                           format_fixed(s.avg_freq_batch, 2),
                           format_fixed(c.paper_batch, 2)});
  }

  std::cout << "summary (paper-vs-measured):\n" << summary_table.to_string();
  std::cout << "\nexpected ordering: interactive SprintCon > V2 > V1; "
               "batch V1 > V2 > SprintCon.\n";
  return 0;
}
