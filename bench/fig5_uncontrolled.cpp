// Figure 5: uncontrolled computational sprinting (raw SGCT) trips the
// breaker, drains the UPS, and blacks out the rack.
//
// Paper narrative to reproduce: SGCT's actual power drifts slightly above
// the CB budget -> the breaker trips in ~150 s -> the UPS carries the whole
// rack during recovery -> in the second recovery period the battery runs
// out after the 11th minute -> the servers shut down, and the average
// frequencies (0.64 interactive / 0.71 batch in the paper) collapse.
#include <iostream>

#include "common/table.hpp"
#include "common/cli.hpp"
#include "scenario/rig.hpp"

int main(int argc, char** argv) {
  const auto options = sprintcon::parse_bench_options(argc, argv);
  using namespace sprintcon;

  scenario::RigConfig config;
  config.policy = scenario::Policy::kSgct;
  config.completion = workload::CompletionMode::kRepeat;
  scenario::Rig rig(config);
  rig.run();
  const auto& rec = rig.recorder();
  const auto summary = rig.summary();

  std::cout << "Figure 5 - uncontrolled sprinting (SGCT), minute by minute\n\n";
  Table table({"minute", "total (W)", "CB (W)", "UPS (W)", "SOC", "f_inter",
               "f_batch"});
  for (int m = 0; m < 15; ++m) {
    const double t0 = m * 60.0, t1 = t0 + 60.0;
    table.add_row({std::to_string(m + 1),
                   format_fixed(rec.series("total_power_w").mean_between(t0, t1), 0),
                   format_fixed(rec.series("cb_power_w").mean_between(t0, t1), 0),
                   format_fixed(rec.series("ups_power_w").mean_between(t0, t1), 0),
                   format_fixed(rec.series("battery_soc").mean_between(t0, t1), 2),
                   format_fixed(rec.series("freq_interactive").mean_between(t0, t1), 2),
                   format_fixed(rec.series("freq_batch").mean_between(t0, t1), 2)});
  }
  std::cout << table.to_string();

  const double first_trip = rec.series("breaker_open").first_time_above(0.5);
  std::cout << "\nevents:\n"
            << "  first CB trip at " << format_fixed(first_trip, 0)
            << " s (paper: ~150 s)\n"
            << "  total trips: " << summary.cb_trips << '\n'
            << "  UPS exhausted / outage at "
            << format_fixed(summary.outage_start_s / 60.0, 1)
            << " min (paper: after the 11th minute)\n"
            << "  avg frequency interactive "
            << format_fixed(summary.avg_freq_interactive, 2)
            << " (paper: 0.64), batch "
            << format_fixed(summary.avg_freq_batch, 2) << " (paper: 0.71)\n"
            << "  UPS DoD " << format_percent(summary.depth_of_discharge)
            << " (paper: battery fully drained)\n";
  if (const std::string path = maybe_write_csv(
          options, "fig5_uncontrolled", rig.recorder().all_series());
      !path.empty()) {
    std::cout << "\nseries written to " << path << '\n';
  }
  return 0;
}
