// Ablation: MPC horizons and reference time constant.
//
// Sweeps (L_p, L_c, tau_r) on the standalone server-power-control problem:
// a live rack of batch cores tracking a square-wave P_batch target. Reports
// tracking RMSE and worst overshoot, isolating the knobs of Eq. 7/8 from
// the rest of the system.
#include <cmath>
#include <iostream>
#include <memory>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/server_controller.hpp"
#include "sim/clock.hpp"
#include "workload/batch_profile.hpp"

namespace {

using namespace sprintcon;

std::unique_ptr<server::Rack> batch_rack(std::size_t n_servers) {
  const server::PlatformSpec spec = server::paper_platform();
  Rng rng(55);
  std::vector<server::Server> servers;
  const auto profiles = workload::spec2006_profiles();
  std::size_t pi = 0;
  for (std::size_t s = 0; s < n_servers; ++s) {
    std::vector<server::CpuCore> cores;
    for (std::size_t c = 0; c < spec.cores_per_server; ++c) {
      if (c < 4) {
        cores.emplace_back(spec.freq_min, spec.freq_max,
                           workload::InteractiveTraceGenerator(
                               workload::InteractiveTraceConfig{}, rng.split()));
      } else {
        cores.emplace_back(spec.freq_min, spec.freq_max,
                           std::make_unique<workload::BatchJob>(
                               profiles[pi++ % profiles.size()], 900.0, 1e6,
                               workload::CompletionMode::kRunOnce, rng.split()));
      }
    }
    servers.emplace_back(spec, std::move(cores), rng.split());
  }
  return std::make_unique<server::Rack>(std::move(servers));
}

struct TrackingResult {
  double rmse_w = 0.0;
  double overshoot_w = 0.0;
};

TrackingResult track_square_wave(const core::SprintConfig& cfg) {
  auto rack = batch_rack(4);
  core::ServerPowerController ctrl(
      cfg, *rack, server::LinearPowerModel(server::paper_platform()));
  ctrl.pin_interactive_at_peak();
  sim::SimClock clock(1.0);

  double sq_err = 0.0, overshoot = 0.0;
  int samples = 0;
  for (int t = 0; t < 600; ++t) {
    rack->step(clock);
    // Square wave between two batch budgets, 60 s half-period.
    const double target = ((t / 60) % 2 == 0) ? 550.0 : 380.0;
    if (clock.every(cfg.control_period_s)) {
      ctrl.update(rack->total_power_w(), target, clock.now_s());
    }
    // Measure after a settling allowance of 10 s into each half-period.
    if (t % 60 >= 10) {
      const double err = ctrl.last_p_fb_w() - target;
      sq_err += err * err;
      overshoot = std::max(overshoot, err);
      ++samples;
    }
    clock.advance();
  }
  return {std::sqrt(sq_err / samples), overshoot};
}

}  // namespace

int main() {
  std::cout << "Ablation - MPC horizons and reference time constant\n"
            << "(square-wave P_batch tracking on a 4-server batch rack)\n\n";

  Table table({"L_p", "L_c", "tau_r (s)", "RMSE (W)", "overshoot (W)"});
  const struct {
    std::size_t lp, lc;
    double tau;
  } cases[] = {
      {2, 1, 4.0}, {8, 1, 4.0},  {8, 2, 4.0},  {16, 4, 4.0},
      {8, 2, 1.0}, {8, 2, 8.0},  {8, 2, 16.0},
  };
  for (const auto& c : cases) {
    core::SprintConfig cfg = core::paper_config();
    cfg.mpc.prediction_horizon = c.lp;
    cfg.mpc.control_horizon = c.lc;
    cfg.mpc.reference_time_constant_s = c.tau;
    const TrackingResult r = track_square_wave(cfg);
    table.add_row({std::to_string(c.lp), std::to_string(c.lc),
                   format_fixed(c.tau, 0), format_fixed(r.rmse_w, 1),
                   format_fixed(r.overshoot_w, 1)});
  }
  std::cout << table.to_string();
  std::cout << "\nreading: a larger tau_r smooths the approach (less "
               "overshoot, slower settling);\nthe horizons matter little "
               "for this static-gain plant, as expected from Eq. 4.\n";
  return 0;
}
