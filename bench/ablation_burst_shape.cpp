// Ablation: burst shape robustness.
//
// The paper's evaluation uses one Wikipedia trace window. Real bursts come
// in many shapes — step onsets, slow ramps, flash crowds that decay, and
// double peaks. SprintCon's claim is *controllability*: whatever the
// interactive demand does, the breaker stays within budget and the batch
// deadlines hold, with the UPS absorbing the difference. This harness
// sweeps burst envelopes and checks the invariants.
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "scenario/rig.hpp"

int main() {
  using namespace sprintcon;
  using workload::EnvelopePoint;

  struct Shape {
    const char* name;
    std::vector<EnvelopePoint> envelope;
  };
  const Shape shapes[] = {
      {"constant (paper-like)", {}},
      {"step burst", {{0.0, 0.3}, {299.0, 0.3}, {300.0, 0.75}}},
      {"slow ramp", {{0.0, 0.25}, {900.0, 0.8}}},
      {"flash crowd",
       {{0.0, 0.35}, {180.0, 0.35}, {210.0, 0.85}, {420.0, 0.45},
        {900.0, 0.4}}},
      {"double peak",
       {{0.0, 0.3}, {150.0, 0.75}, {300.0, 0.35}, {600.0, 0.8},
        {750.0, 0.4}}},
  };

  std::cout << "Ablation - burst shape robustness (SprintCon, 15-minute "
               "sprint, 12-minute deadlines)\n\n";
  Table table({"burst shape", "trips", "CB stress max", "UPS Wh", "DoD",
               "deadlines met", "f_inter", "p95 lat (ms)"});

  for (const Shape& shape : shapes) {
    scenario::RigConfig config;
    config.interactive.envelope = shape.envelope;
    scenario::Rig rig(config);
    rig.run();
    const auto s = rig.summary();
    table.add_row(
        {shape.name, std::to_string(s.cb_trips),
         format_fixed(rig.recorder().series("cb_thermal_stress").max(), 2),
         format_fixed(s.ups_discharged_wh, 0),
         format_percent(s.depth_of_discharge),
         s.all_deadlines_met ? "yes" : "NO",
         format_fixed(s.avg_freq_interactive, 2),
         format_fixed(s.mean_p95_latency_ms, 1)});
  }
  std::cout << table.to_string();
  std::cout << "\nreading: the safety invariants (no trips, deadlines met,\n"
               "interactive at peak) hold for every burst shape; only the\n"
               "UPS usage varies - heavier interactive phases shift more of\n"
               "the sprint onto the battery, exactly the degree of freedom\n"
               "the allocator is designed to manage.\n";
  return 0;
}
